// Package raft implements standard Raft per Figure 2 of the paper (black
// text only), following Ongaro & Ousterhout. It is the evaluation baseline
// and the protocol that provably does NOT refine MultiPaxos: a follower
// erases extraneous log entries to match the leader (a state transition
// MultiPaxos forbids), and entry terms are never overwritten, which forces
// the §5.4.2 restriction that a leader only commits entries of its own
// term by counting replicas.
package raft

import (
	"math/rand"
	"sort"

	"raftpaxos/internal/protocol"
)

// Role is the replica's current role.
type Role uint8

// Roles.
const (
	Follower Role = iota + 1
	Candidate
	Leader
)

// Wire stability: the message types below travel the live wire through internal/wire;
// exported field ORDER is the encoded layout and is frozen. Append new
// fields at the end and bump the transport's wireVersion.
//
// MsgVoteReq is Raft's RequestVote RPC.
type MsgVoteReq struct {
	Term      uint64
	LastIndex int64
	LastTerm  uint64
	// Commit is the candidate's commit index: with the fast write path on,
	// a granting voter reports its log above it (MsgVoteResp.Extra) so the
	// new leader can recover fast-accepted suffixes (protocol.ChooseFast).
	Commit int64
}

// WireSize implements protocol.Message.
func (m *MsgVoteReq) WireSize() int { return 32 }

// MsgVoteResp is Raft's RequestVote response. Unlike Raft*, it carries no
// log entries — except with the fast write path on, where Extra reports
// the voter's entries above the candidate's commit index (speculative
// fast-accepted entries carry Bal 0) for the election recovery rule.
type MsgVoteResp struct {
	Term    uint64
	Granted bool
	Extra   []protocol.Entry
}

// WireSize implements protocol.Message.
func (m *MsgVoteResp) WireSize() int {
	n := 9
	for i := range m.Extra {
		n += 24 + m.Extra[i].Cmd.WireSize()
	}
	return n
}

// CmdCount implements simnet.CmdCounter.
func (m *MsgVoteResp) CmdCount() int { return len(m.Extra) }

// RequiresBarrier implements protocol.BarrierMessage: a vote grant
// promises the recorded term and vote are durable.
func (m *MsgVoteResp) RequiresBarrier() {}

// MsgAppendReq is Raft's AppendEntries RPC.
type MsgAppendReq struct {
	Term      uint64
	PrevIndex int64
	PrevTerm  uint64
	Entries   []protocol.Entry
	Commit    int64
	// ReadCtx is the highest pending ReadIndex confirmation context at the
	// leader (0 = none); the follower echoes it in its response, and a
	// quorum of echoes proves the leader's term was still current after
	// the reads arrived (see protocol.ReadTracker).
	ReadCtx uint64
	// PrevID is the command ID of the sender's entry at PrevIndex (0 =
	// unknown/none). Only consulted when the receiver's entry at PrevIndex
	// is speculative (fast-accepted, Bal 0): two speculative entries can
	// share (index, term) while holding different commands, which the
	// PrevTerm check alone cannot see.
	PrevID uint64
}

// WireSize implements protocol.Message.
func (m *MsgAppendReq) WireSize() int {
	n := 48
	for i := range m.Entries {
		n += 24 + m.Entries[i].Cmd.WireSize()
	}
	return n
}

// CmdCount implements simnet.CmdCounter.
func (m *MsgAppendReq) CmdCount() int { return len(m.Entries) }

// MsgAppendResp is Raft's AppendEntries response.
type MsgAppendResp struct {
	Term      uint64
	Ok        bool
	LastIndex int64
	// ReadCtx echoes the request's ReadIndex confirmation context. A
	// reject still echoes: even a log mismatch acknowledges the sender's
	// leadership at this term, which is all the read path needs.
	ReadCtx uint64
}

// WireSize implements protocol.Message.
func (m *MsgAppendResp) WireSize() int { return 32 }

// RequiresBarrier implements protocol.BarrierMessage: an append ack
// promises the accepted entries are durable.
func (m *MsgAppendResp) RequiresBarrier() {}

// MsgForward carries client commands from a follower to the leader
// (etcd-style batched forwarding).
type MsgForward struct {
	Cmds []protocol.Command
}

// WireSize implements protocol.Message.
func (m *MsgForward) WireSize() int {
	n := 8
	for i := range m.Cmds {
		n += m.Cmds[i].WireSize()
	}
	return n
}

// CmdCount implements simnet.CmdCounter.
func (m *MsgForward) CmdCount() int { return len(m.Cmds) }

// Config configures a Raft replica.
type Config struct {
	ID    protocol.NodeID
	Peers []protocol.NodeID

	ElectionTicks  int
	HeartbeatTicks int
	MaxBatch       int
	MaxInflight    int
	Seed           int64
	// Passive disables the election timer (for pinning a benchmark leader).
	Passive bool
	// ReadIndex enables the fast linearizable read path: the leader
	// serves reads from the state machine after one leadership
	// confirmation round, with no log append and no fsync, and followers
	// forward reads to it. Off, reads replicate through the log like
	// writes (Section 4.4 of the paper — the baseline the simulated
	// figures measure).
	ReadIndex bool
	// UnsafeSkipReadQuorum serves ReadIndex reads without the leadership
	// confirmation round. Testing only: it lets the linearizability
	// checker's sabotage regression prove the checker catches the stale
	// reads a deposed leader then serves. Never enable in a deployment.
	UnsafeSkipReadQuorum bool
	// FastPath enables the one-RTT Fast Paxos write path: a follower
	// broadcasts submissions to every replica, which accept speculatively
	// (entry Bal 0) and ack everyone; ⌈3n/4⌉ matching acks including the
	// leader's commit the command without the forward-to-leader round trip.
	// Collisions fall back to the classic path automatically because the
	// leader treats every fast accept as a forwarded submission.
	FastPath bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ElectionTicks <= 0 {
		out.ElectionTicks = 10
	}
	if out.HeartbeatTicks <= 0 {
		out.HeartbeatTicks = 1
	}
	if out.MaxBatch <= 0 {
		out.MaxBatch = 1024
	}
	if out.MaxInflight <= 0 {
		out.MaxInflight = 16
	}
	return out
}

// Engine is a single Raft replica.
type Engine struct {
	cfg Config
	rng *rand.Rand

	term     uint64
	votedFor protocol.NodeID
	role     Role
	leader   protocol.NodeID

	// log is the uncompacted tail in global index space: the prefix at or
	// below log.Base() has been folded into a snapshot and truncated away
	// (TruncatePrefix), bounding replica memory by the tail length.
	log    protocol.Log
	commit int64

	votes map[protocol.NodeID]bool

	next     map[protocol.NodeID]int64
	match    map[protocol.NodeID]int64
	inflight map[protocol.NodeID]int

	// provider supplies the durable snapshot image a leader ships to a
	// peer stranded below the compaction base; xfers tracks one chunked
	// transfer per such peer, snapAsm reassembles an inbound one.
	provider protocol.SnapshotProvider
	xfers    map[protocol.NodeID]*protocol.SnapshotXfer
	snapAsm  protocol.SnapshotAssembly

	elapsed   int
	timeout   int
	hbElapsed int

	pending []protocol.Command
	// ReadIndex state: reads tracks confirmation rounds at the leader;
	// readBarrier is the leader's last log index at election — a read's
	// index is clamped up to it, because entries a predecessor committed
	// are only provably covered once this leader's own barrier entry
	// commits (§6.4 / §8 of the Raft dissertation); pendingReads buffers
	// reads submitted while no leader is known.
	reads        protocol.ReadTracker
	readBarrier  int64
	pendingReads []protocol.Command

	// Fast write path state (nil/empty unless cfg.FastPath):
	// fast counts acks per (slot, cmd); fastMine marks commands this
	// replica fast-submitted (it answers its own client); fastRemote marks
	// commands the leader adopted from others' fast accepts (the submitter
	// replies, not the arbiter); fastSeen records the slot each fast
	// command occupies locally, making replayed MsgFastAccepts idempotent;
	// fastDone marks slots committed through a fast quorum (stats);
	// fastVotes holds granting voters' log reports for election recovery.
	fast       *protocol.FastTracker
	fastMine   map[uint64]bool
	fastRemote map[uint64]bool
	fastSeen   map[uint64]int64
	fastDone   map[int64]bool
	fastVotes  map[protocol.NodeID][]protocol.Entry
	stats      protocol.FastStats
}

var _ protocol.Engine = (*Engine)(nil)

// New builds a Raft replica.
func New(cfg Config) *Engine {
	c := cfg.withDefaults()
	e := &Engine{
		cfg:      c,
		rng:      rand.New(rand.NewSource(c.Seed ^ int64(c.ID)<<17)),
		votedFor: protocol.None,
		role:     Follower,
		leader:   protocol.None,
	}
	if c.FastPath {
		e.fast = protocol.NewFastTracker(len(c.Peers))
		e.fastMine = make(map[uint64]bool)
		e.fastRemote = make(map[uint64]bool)
		e.fastSeen = make(map[uint64]int64)
		e.fastDone = make(map[int64]bool)
	}
	e.resetTimeout()
	return e
}

// FastStats implements protocol.FastStatser.
func (e *Engine) FastStats() protocol.FastStats { return e.stats }

// ID implements protocol.Engine.
func (e *Engine) ID() protocol.NodeID { return e.cfg.ID }

// Leader implements protocol.Engine.
func (e *Engine) Leader() protocol.NodeID { return e.leader }

// IsLeader implements protocol.Engine.
func (e *Engine) IsLeader() bool { return e.role == Leader }

// Term returns the current term.
func (e *Engine) Term() uint64 { return e.term }

// VotedFor returns the replica voted for in the current term (None when
// no vote was cast); live drivers persist it alongside the term.
func (e *Engine) VotedFor() protocol.NodeID { return e.votedFor }

// RestoreHardState primes term and vote from durable storage before the
// engine processes any input, so a restarted replica cannot cast a
// second vote in a term it already voted in.
func (e *Engine) RestoreHardState(term uint64, votedFor protocol.NodeID) {
	if term > e.term {
		e.term = term
		e.votedFor = votedFor
	}
}

// SetSnapshotProvider implements protocol.SnapshotSender: the driver
// wires its snapshot store so a leader can ship images to peers that
// fell behind the compaction base.
func (e *Engine) SetSnapshotProvider(p protocol.SnapshotProvider) { e.provider = p }

// RestoreSnapshot primes the engine at a snapshot boundary before
// RestoreLog delivers the tail: the log starts at index (whose entry had
// term) and everything at or below it is committed.
func (e *Engine) RestoreSnapshot(index int64, term uint64) {
	if e.log.LastIndex() > 0 {
		return
	}
	e.log.Restore(index, term, nil)
	if index > e.commit {
		e.commit = index
	}
}

// RestoreLog adopts a durably logged tail after a restart, before the
// engine processes any input; the tail continues wherever RestoreSnapshot
// anchored the log (index 1 on a snapshot-free store). Entries are
// persisted at accept time, so the tail normally extends past the saved
// commit index: the suffix comes back accepted-but-uncommitted (it may
// even conflict with the next leader's log and be overwritten), which is
// exactly what lets a quorum-acked suffix survive a full-cluster crash.
// Commit is clamped to the restored length.
func (e *Engine) RestoreLog(ents []protocol.Entry, commit int64) {
	if e.log.Len() > 0 || len(ents) == 0 {
		return
	}
	if ents[0].Index != e.log.LastIndex()+1 {
		return // tail does not meet the snapshot boundary: driver bug
	}
	for _, ent := range ents {
		e.log.Append(ent)
	}
	if commit > e.log.LastIndex() {
		commit = e.log.LastIndex()
	}
	if commit > e.commit {
		e.commit = commit
	}
}

// TruncatePrefix implements protocol.PrefixTruncator: drop in-memory
// entries at or below through (clamped to the commit index). All index
// arithmetic stays in global log-index space.
func (e *Engine) TruncatePrefix(through int64) {
	if through > e.commit {
		through = e.commit
	}
	e.log.TruncatePrefix(through)
}

// LogLen returns the number of entries held in memory (the uncompacted
// tail).
func (e *Engine) LogLen() int { return e.log.Len() }

// FirstIndex returns the lowest log index still held in memory.
func (e *Engine) FirstIndex() int64 { return e.log.FirstIndex() }

// CommitIndex returns the highest committed index.
func (e *Engine) CommitIndex() int64 { return e.commit }

// LastIndex returns the last log index.
func (e *Engine) LastIndex() int64 { return e.log.LastIndex() }

// EntryAt returns the entry at index i (1-based); compacted indexes
// report false.
func (e *Engine) EntryAt(i int64) (protocol.Entry, bool) {
	return e.log.At(i)
}

func (e *Engine) termAt(i int64) uint64 { return e.log.TermAt(i) }

func (e *Engine) quorum() int { return protocol.Quorum(len(e.cfg.Peers)) }

func (e *Engine) resetTimeout() {
	e.elapsed = 0
	e.timeout = e.cfg.ElectionTicks + e.rng.Intn(e.cfg.ElectionTicks)
}

// Tick implements protocol.Engine.
func (e *Engine) Tick() protocol.Output {
	var out protocol.Output
	if e.role == Leader {
		e.hbElapsed++
		if e.hbElapsed >= e.cfg.HeartbeatTicks {
			e.hbElapsed = 0
			e.broadcastAppend(&out, true)
		}
		return out
	}
	if e.cfg.Passive {
		return out
	}
	e.elapsed++
	if e.elapsed >= e.timeout {
		e.campaign(&out)
	}
	return out
}

// Campaign forces an immediate election.
func (e *Engine) Campaign() protocol.Output {
	var out protocol.Output
	e.campaign(&out)
	return out
}

func (e *Engine) campaign(out *protocol.Output) {
	e.term++
	e.role = Candidate
	// Pending confirmation rounds die with the leadership we just gave
	// up: echoes are ignored while Candidate, and winning re-arms the
	// tracker fresh — without this, forced re-election strands the reads.
	e.reads.FailAll(out)
	e.leader = protocol.None
	e.votedFor = e.cfg.ID
	e.votes = map[protocol.NodeID]bool{e.cfg.ID: true}
	e.resetTimeout()
	out.StateChanged = true
	if e.fast != nil {
		e.fastVotes = make(map[protocol.NodeID][]protocol.Entry)
	}
	req := &MsgVoteReq{Term: e.term, LastIndex: e.LastIndex(), LastTerm: e.termAt(e.LastIndex()), Commit: e.commit}
	for _, p := range e.cfg.Peers {
		if p == e.cfg.ID {
			continue
		}
		out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: p, Msg: req})
	}
	if len(e.cfg.Peers) == 1 {
		e.becomeLeader(out)
	}
}

func (e *Engine) becomeFollower(term uint64, leader protocol.NodeID, out *protocol.Output) {
	if term > e.term {
		e.term = term
		e.votedFor = protocol.None
		out.StateChanged = true
	}
	e.role = Follower
	e.xfers = nil // outbound transfers are leader state
	// Reads awaiting confirmation die with the leadership: fail them fast
	// so clients retry at the new leader instead of hanging (no-op unless
	// this replica was leading).
	e.reads.FailAll(out)
	if leader != protocol.None {
		e.leader = leader
		e.flushPending(out)
	}
	e.resetTimeout()
}

// Step implements protocol.Engine.
func (e *Engine) Step(from protocol.NodeID, msg protocol.Message) protocol.Output {
	var out protocol.Output
	switch m := msg.(type) {
	case *MsgVoteReq:
		e.stepVoteReq(from, m, &out)
	case *MsgVoteResp:
		e.stepVoteResp(from, m, &out)
	case *MsgAppendReq:
		e.stepAppendReq(from, m, &out)
	case *MsgAppendResp:
		e.stepAppendResp(from, m, &out)
	case *protocol.MsgInstallSnapshot:
		e.stepInstallSnapshot(from, m, &out)
	case *protocol.MsgInstallSnapshotResp:
		e.stepInstallSnapshotResp(from, m, &out)
	case *MsgForward:
		out.Merge(e.SubmitBatch(m.Cmds))
	case *protocol.MsgReadForward:
		out.Merge(e.SubmitReadBatch(m.Cmds))
	case *protocol.MsgFastAccept:
		e.stepFastAccept(from, m, &out)
	case *protocol.MsgFastAck:
		e.stepFastAck(from, m, &out)
	}
	return out
}

func (e *Engine) stepVoteReq(from protocol.NodeID, m *MsgVoteReq, out *protocol.Output) {
	if m.Term > e.term {
		e.becomeFollower(m.Term, protocol.None, out)
	}
	upToDate := m.LastTerm > e.termAt(e.LastIndex()) ||
		(m.LastTerm == e.termAt(e.LastIndex()) && m.LastIndex >= e.LastIndex())
	grant := m.Term == e.term &&
		(e.votedFor == protocol.None || e.votedFor == from) &&
		e.role != Leader && upToDate
	resp := &MsgVoteResp{Term: e.term}
	if grant {
		e.votedFor = from
		e.resetTimeout()
		resp.Granted = true
		out.StateChanged = true
		if e.fast != nil {
			// Report our log above the candidate's commit so it can run the
			// fast-path recovery rule (ChooseFast) over the vote quorum:
			// speculative entries (Bal 0) it has never seen may hold
			// fast-chosen commands it must adopt.
			lo := m.Commit + 1
			if lo < e.log.FirstIndex() {
				lo = e.log.FirstIndex()
			}
			if lo <= e.LastIndex() {
				resp.Extra = e.log.Slice(lo, e.LastIndex())
			}
		}
	}
	out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: from, Msg: resp})
}

func (e *Engine) stepVoteResp(from protocol.NodeID, m *MsgVoteResp, out *protocol.Output) {
	if m.Term > e.term {
		e.becomeFollower(m.Term, protocol.None, out)
		return
	}
	if e.role != Candidate || m.Term != e.term || !m.Granted {
		return
	}
	e.votes[from] = true
	if e.fastVotes != nil {
		e.fastVotes[from] = m.Extra
	}
	if len(e.votes) >= e.quorum() {
		e.becomeLeader(out)
	}
}

func (e *Engine) becomeLeader(out *protocol.Output) {
	e.role = Leader
	e.leader = e.cfg.ID
	if e.fast != nil {
		e.adoptFastSuffix(out)
		e.fast.Reset(e.term)
	}
	e.votes = nil
	e.next = make(map[protocol.NodeID]int64, len(e.cfg.Peers))
	e.match = make(map[protocol.NodeID]int64, len(e.cfg.Peers))
	e.inflight = make(map[protocol.NodeID]int, len(e.cfg.Peers))
	e.xfers = make(map[protocol.NodeID]*protocol.SnapshotXfer)
	for _, p := range e.cfg.Peers {
		e.next[p] = e.LastIndex() + 1
		e.match[p] = 0
	}
	e.match[e.cfg.ID] = e.LastIndex()
	e.hbElapsed = 0
	out.StateChanged = true
	// A no-op barrier entry lets the new leader commit its predecessors'
	// entries despite the §5.4.2 restriction.
	e.appendLocal(protocol.Command{Op: protocol.OpNop}, out)
	// ReadIndex reads may not be served below the barrier entry: entries a
	// predecessor committed are only provably reflected in our commit
	// index once an entry of our own term (the no-op above) commits.
	e.readBarrier = e.LastIndex()
	e.reads.Reset(e.quorum(), e.cfg.UnsafeSkipReadQuorum)
	e.broadcastAppend(out, true)
	e.flushPending(out)
}

// Submit implements protocol.Engine.
func (e *Engine) Submit(cmd protocol.Command) protocol.Output {
	return e.SubmitBatch([]protocol.Command{cmd})
}

// SubmitBatch implements protocol.BatchSubmitter: the leader appends the
// whole batch locally and replicates it in one AppendEntries broadcast.
func (e *Engine) SubmitBatch(cmds []protocol.Command) protocol.Output {
	var out protocol.Output
	if len(cmds) == 0 {
		return out
	}
	switch {
	case e.role == Leader:
		for _, cmd := range cmds {
			e.appendLocal(cmd, &out)
		}
		e.broadcastAppend(&out, false)
	case e.fast != nil && e.leader != protocol.None:
		e.fastSubmit(cmds, &out)
	case e.leader != protocol.None:
		out.Msgs = append(out.Msgs, protocol.Envelope{
			From: e.cfg.ID, To: e.leader,
			Msg: &MsgForward{Cmds: append([]protocol.Command(nil), cmds...)},
		})
	default:
		for _, cmd := range cmds {
			if len(e.pending) < 4096 {
				e.pending = append(e.pending, cmd)
				continue
			}
			kind := protocol.ReplyWrite
			if cmd.Op == protocol.OpGet {
				kind = protocol.ReplyRead
			}
			out.Replies = append(out.Replies, protocol.ClientReply{
				Kind: kind, CmdID: cmd.ID, Client: cmd.Client, Err: protocol.ErrNotLeader,
			})
		}
	}
	return out
}

// SubmitRead implements protocol.Engine: with ReadIndex enabled, the
// leader serves the read from the state machine after one leadership
// confirmation round — no log append, no fsync; otherwise reads
// replicate through the log.
func (e *Engine) SubmitRead(cmd protocol.Command) protocol.Output {
	return e.SubmitReadBatch([]protocol.Command{cmd})
}

// SubmitReadBatch implements protocol.ReadBatchSubmitter: the whole batch
// shares one read index and one confirmation round.
func (e *Engine) SubmitReadBatch(cmds []protocol.Command) protocol.Output {
	var out protocol.Output
	if len(cmds) == 0 {
		return out
	}
	for i := range cmds {
		cmds[i].Op = protocol.OpGet
	}
	if !e.cfg.ReadIndex {
		return e.SubmitBatch(cmds)
	}
	if e.role == Leader {
		e.addReads(cmds, &out)
	} else {
		protocol.RouteReads(e.cfg.ID, e.leader, &e.pendingReads, cmds, &out)
	}
	return out
}

// addReads opens a ReadIndex confirmation round at the leader: the read
// index is the commit index, clamped up to the election barrier, and a
// heartbeat broadcast carrying the batch's ctx starts the confirmation
// immediately instead of waiting out the heartbeat interval.
func (e *Engine) addReads(cmds []protocol.Command, out *protocol.Output) {
	idx := e.commit
	if e.readBarrier > idx {
		idx = e.readBarrier
	}
	e.reads.Add(cmds, idx, out)
	if e.reads.Pending() > 0 {
		e.broadcastAppend(out, true)
	}
}

func (e *Engine) flushPending(out *protocol.Output) {
	if reads := e.pendingReads; len(reads) > 0 {
		e.pendingReads = nil
		out.Merge(e.SubmitReadBatch(reads))
	}
	if len(e.pending) == 0 {
		return
	}
	cmds := e.pending
	e.pending = nil
	if e.role == Leader {
		for _, c := range cmds {
			e.appendLocal(c, out)
		}
		e.broadcastAppend(out, false)
		return
	}
	out.Msgs = append(out.Msgs, protocol.Envelope{
		From: e.cfg.ID, To: e.leader, Msg: &MsgForward{Cmds: cmds},
	})
}

func (e *Engine) appendLocal(cmd protocol.Command, out *protocol.Output) {
	// In standard Raft the per-entry ballot simply mirrors the creation
	// term and is never rewritten.
	ent := protocol.Entry{Index: e.LastIndex() + 1, Term: e.term, Bal: e.term, Cmd: cmd}
	e.log.Append(ent)
	e.match[e.cfg.ID] = e.LastIndex()
	// The leader is part of the commit quorum: its own entry must be
	// durable before it can count itself, so the local append rides the
	// same persist-before-ack barrier as a follower's accept.
	out.AppendedEntries = append(out.AppendedEntries, ent)
	out.StateChanged = true
	if len(e.cfg.Peers) == 1 {
		e.maybeCommit(out)
	}
}

func (e *Engine) broadcastAppend(out *protocol.Output, heartbeat bool) {
	for _, p := range e.cfg.Peers {
		if p == e.cfg.ID {
			continue
		}
		e.sendAppend(p, out, heartbeat)
	}
}

func (e *Engine) sendAppend(p protocol.NodeID, out *protocol.Output, heartbeat bool) {
	next := e.next[p]
	if next > e.LastIndex() && !heartbeat {
		return
	}
	if e.inflight[p] >= e.cfg.MaxInflight && !heartbeat {
		return
	}
	if next < e.log.FirstIndex() {
		// The compacted prefix cannot be resent entry-by-entry; start at
		// the held tail (catching a peer up past the snapshot needs a
		// snapshot transfer, not an append).
		next = e.log.FirstIndex()
	}
	end := e.LastIndex()
	if end > next-1+int64(e.cfg.MaxBatch) {
		end = next - 1 + int64(e.cfg.MaxBatch)
	}
	var ents []protocol.Entry
	if end >= next {
		ents = e.log.Slice(next, end)
	}
	req := &MsgAppendReq{
		Term:      e.term,
		PrevIndex: next - 1,
		PrevTerm:  e.termAt(next - 1),
		Entries:   ents,
		Commit:    e.commit,
		ReadCtx:   e.reads.MaxCtx(),
	}
	if e.fast != nil {
		if prev, ok := e.log.At(next - 1); ok {
			req.PrevID = prev.Cmd.ID
		}
	}
	// The ctx is now in flight: later reads must open a fresh one (an
	// echo of this ctx only proves leadership up to this send).
	e.reads.MarkSent()
	out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: p, Msg: req})
	if end >= next {
		e.next[p] = end + 1
		e.inflight[p]++
	}
}

func (e *Engine) stepAppendReq(from protocol.NodeID, m *MsgAppendReq, out *protocol.Output) {
	resp := &MsgAppendResp{Term: e.term, LastIndex: e.LastIndex()}
	if m.Term < e.term {
		out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: from, Msg: resp})
		return
	}
	e.becomeFollower(m.Term, from, out)
	resp.Term = e.term
	// Echo the read confirmation ctx whenever we answer at the sender's
	// term — even a log-mismatch reject acknowledges its leadership,
	// which is all the ReadIndex round needs.
	resp.ReadCtx = m.ReadCtx

	switch {
	case m.PrevIndex > e.LastIndex():
		resp.LastIndex = e.LastIndex()
	case m.PrevIndex >= e.log.Base() && e.termAt(m.PrevIndex) != m.PrevTerm:
		// A PrevIndex below the compaction base cannot conflict: that
		// prefix is committed, hence identical on any current leader.
		resp.LastIndex = m.PrevIndex - 1
	case e.fast != nil && m.PrevID != 0 && e.specConflict(m.PrevIndex, m.PrevID):
		// Our entry at PrevIndex is speculative and names a different
		// command: two fast accepts collided at the same (index, term),
		// which the PrevTerm check alone cannot distinguish. Back up so
		// the leader resends from the divergence point.
		resp.LastIndex = m.PrevIndex - 1
	default:
		// Accept. Standard Raft: find the first conflicting entry, ERASE
		// everything from there on, then append — the follower's log is
		// forced to match the leader's, even if that shortens it. This is
		// the transition with no MultiPaxos counterpart (Section 3).
		// Entries at or below the compaction base are committed and
		// snapshotted here; they can never conflict and are skipped.
		// Everything newly written — from the first conflicting or fresh
		// index on — is emitted for persistence before the ack leaves
		// (Output.AppendedEntries): the store's overwriting append erases
		// the same stale suffix the in-memory truncation did.
		for k, ent := range m.Entries {
			if ent.Index <= e.log.Base() {
				continue
			}
			if ent.Index <= e.LastIndex() {
				conflict := e.termAt(ent.Index) != ent.Term
				if cur, ok := e.log.At(ent.Index); ok && cur.Bal == 0 && e.fast != nil {
					if cur.Cmd.ID != ent.Cmd.ID {
						// Speculative entries can collide at equal terms:
						// the leader's copy arbitrates.
						conflict = true
					} else if !conflict && ent.Bal != 0 {
						// The leader's classic copy carries the same command:
						// ratify our speculative entry in place.
						cur.Bal = ent.Bal
						e.log.Set(ent.Index, cur)
					}
				}
				if conflict {
					if e.fast != nil {
						keep := make(map[uint64]bool, len(m.Entries))
						for j := range m.Entries {
							keep[m.Entries[j].Cmd.ID] = true
						}
						e.dropSpeculative(ent.Index, keep, out)
					}
					e.log.TruncateSuffix(ent.Index - 1) // erase conflicting suffix
				}
			}
			if ent.Index > e.LastIndex() {
				for _, rest := range m.Entries[k:] {
					e.log.Append(rest)
				}
				out.AppendedEntries = append(out.AppendedEntries, m.Entries[k:]...)
				break
			}
		}
		resp.Ok = true
		resp.LastIndex = m.PrevIndex + int64(len(m.Entries))
		if e.fast != nil {
			// Ack only the verified prefix: a lost earlier append can leave
			// unratified speculative entries below this one's range, and
			// those are not the leader's to count toward a commit quorum.
			for i := e.commit + 1; i <= resp.LastIndex; i++ {
				if ent, ok := e.log.At(i); ok && ent.Bal == 0 {
					resp.LastIndex = i - 1
					break
				}
			}
		}
		out.StateChanged = true
		if c := min64(m.Commit, resp.LastIndex); c > e.commit {
			e.advanceCommit(c, out)
		}
		e.tryFastCommit(out)
	}
	out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: from, Msg: resp})
}

func (e *Engine) stepAppendResp(from protocol.NodeID, m *MsgAppendResp, out *protocol.Output) {
	if m.Term > e.term {
		e.becomeFollower(m.Term, protocol.None, out)
		return
	}
	if e.role != Leader || m.Term != e.term {
		return
	}
	if m.ReadCtx > 0 {
		// The follower processed a message we sent while still leading:
		// that confirms every read batch at or below the echoed ctx.
		e.reads.Ack(from, m.ReadCtx, out)
	}
	if e.inflight[from] > 0 {
		e.inflight[from]--
	}
	if !m.Ok {
		e.next[from] = min64(m.LastIndex+1, e.LastIndex()+1)
		if e.next[from] < 1 {
			e.next[from] = 1
		}
		if e.next[from] < e.log.FirstIndex() {
			// The follower needs entries below our compaction base, which
			// log replay can never provide: ship the snapshot image instead.
			// (Without a provider this degrades to heartbeat-cadence probes.)
			e.beginSnapshotTransfer(from, out)
			return
		}
		e.sendAppend(from, out, false)
		return
	}
	if m.LastIndex > e.match[from] {
		e.match[from] = m.LastIndex
	}
	if e.next[from] <= e.match[from] {
		e.next[from] = e.match[from] + 1
	}
	e.maybeCommit(out)
	if e.next[from] <= e.LastIndex() {
		e.sendAppend(from, out, false)
	}
}

// beginSnapshotTransfer starts (or nudges) the chunked shipment of the
// latest durable snapshot to p, whose next index fell below the held
// tail. Chunks are ack-paced — one in flight, advanced per response — so
// heartbeats on the same per-peer stream are never head-of-line blocked
// behind a multi-megabyte image.
func (e *Engine) beginSnapshotTransfer(p protocol.NodeID, out *protocol.Output) {
	if x, ok := e.xfers[p]; ok {
		// Already transferring: re-send the current chunk only after a
		// full heartbeat-cadence interval of silence (chunk or ack lost).
		if x.Retry() {
			if chunk := x.Chunk(e.term); chunk != nil {
				out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: p, Msg: chunk})
			}
		}
		return
	}
	if e.provider == nil {
		return // no image source: heartbeat probing is all we can do
	}
	img, ok := e.provider.LatestSnapshotImage()
	if !ok || img.Index+1 < e.log.FirstIndex() {
		// No durable image, or it predates our held tail: the peer could
		// not resume replay above it, so shipping it would not help.
		return
	}
	x := &protocol.SnapshotXfer{Img: img}
	e.xfers[p] = x
	if chunk := x.Chunk(e.term); chunk != nil {
		out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: p, Msg: chunk})
	}
}

// stepInstallSnapshot receives one chunk of a leader's snapshot,
// assembling the image and adopting it when complete: the log re-anchors
// at the image boundary and the driver is told (Output.InstalledSnapshot)
// to persist it and restore the state machine, after which replication
// resumes from the snapshot index.
func (e *Engine) stepInstallSnapshot(from protocol.NodeID, m *protocol.MsgInstallSnapshot, out *protocol.Output) {
	resp := &protocol.MsgInstallSnapshotResp{Term: e.term, Index: m.Index}
	if m.Term < e.term {
		out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: from, Msg: resp})
		return
	}
	e.becomeFollower(m.Term, from, out)
	resp.Term = e.term
	if m.Index <= e.commit {
		// Already covered locally (duplicate transfer or a stale chunk):
		// nothing to install; the ack lets the leader resume appends.
		e.snapAsm.Reset()
		resp.Installed = true
		resp.NextOffset = m.Offset + int64(len(m.Data))
	} else {
		img, done, next := e.snapAsm.Accept(m)
		if next < 0 {
			// A better transfer is in progress: no ack, so this sender's
			// damped retries cannot clobber the winning image's progress.
			return
		}
		resp.NextOffset = next
		if done {
			e.installSnapshot(img, out)
			resp.Installed = true
		}
	}
	out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: from, Msg: resp})
}

// installSnapshot adopts a fully assembled image: everything at or below
// its index is committed and lives in the image, so the in-memory log
// re-anchors there and the driver persists the image before applying
// anything above it. A held suffix beyond the image survives only when
// its entry at the boundary agrees with the image's term (etcd-raft's
// rule) — keeping a conflicting suffix would also record the conflicting
// local term as the base term, and every resumed append at
// PrevIndex=img.Index would then be rejected forever.
func (e *Engine) installSnapshot(img protocol.SnapshotImage, out *protocol.Output) {
	if img.Index <= e.commit {
		return
	}
	if ent, ok := e.log.At(img.Index); ok && ent.Term == img.Term && img.Index < e.log.LastIndex() {
		e.log.TruncatePrefix(img.Index)
	} else {
		e.log.Restore(img.Index, img.Term, nil)
	}
	e.commit = img.Index
	out.StateChanged = true
	out.InstalledSnapshot = &img
}

// stepInstallSnapshotResp paces an outbound transfer: each ack releases
// the next chunk, and the final Installed ack resets the follower's
// replication state to the snapshot boundary so pipelining resumes
// immediately instead of stalling until the next heartbeat probe.
func (e *Engine) stepInstallSnapshotResp(from protocol.NodeID, m *protocol.MsgInstallSnapshotResp, out *protocol.Output) {
	if m.Term > e.term {
		e.becomeFollower(m.Term, protocol.None, out)
		return
	}
	if e.role != Leader || m.Term != e.term {
		return
	}
	x := e.xfers[from]
	if x == nil || x.Img.Index != m.Index {
		return // ack from an older transfer
	}
	if m.Installed {
		delete(e.xfers, from)
		if m.Index > e.match[from] {
			e.match[from] = m.Index
		}
		e.next[from] = e.match[from] + 1
		e.inflight[from] = 0
		e.maybeCommit(out)
		if e.next[from] <= e.LastIndex() {
			e.sendAppend(from, out, false)
		}
		return
	}
	x.Ack(m.NextOffset)
	if chunk := x.Chunk(e.term); chunk != nil {
		out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: from, Msg: chunk})
	} else {
		delete(e.xfers, from) // receiver ran past the image end: abandon
	}
}

// maybeCommit advances commit to the quorum watermark, restricted by
// §5.4.2: only entries of the current term may be committed by counting.
func (e *Engine) maybeCommit(out *protocol.Output) {
	if e.role != Leader {
		return
	}
	matches := make([]int64, 0, len(e.cfg.Peers))
	for _, p := range e.cfg.Peers {
		matches = append(matches, e.match[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	candidate := matches[e.quorum()-1]
	// §5.4.2: walk back to the highest quorum-matched index whose entry is
	// from the current term.
	for candidate > e.commit && e.termAt(candidate) != e.term {
		candidate--
	}
	if candidate > e.commit && e.termAt(candidate) == e.term {
		e.advanceCommit(candidate, out)
	}
}

func (e *Engine) advanceCommit(to int64, out *protocol.Output) {
	for i := e.commit + 1; i <= to; i++ {
		ent, _ := e.log.At(i)
		reply := e.role == Leader && ent.Cmd.Client != protocol.None
		if e.fast != nil {
			id := ent.Cmd.ID
			if e.fastMine[id] {
				// The fast submitter answers its own client — it observes
				// the quorum (or the classic fallback) directly.
				reply = ent.Cmd.Client != protocol.None
				if e.fastDone[i] {
					e.stats.FastCommits++
				} else {
					e.stats.ClassicFallbacks++
				}
			} else if e.fastRemote[id] {
				reply = false // the submitter replies, not the arbiter
			}
			delete(e.fastMine, id)
			delete(e.fastRemote, id)
			delete(e.fastSeen, id)
			delete(e.fastDone, i)
		}
		out.Commits = append(out.Commits, protocol.CommitInfo{Entry: ent, Reply: reply})
	}
	e.commit = to
	if e.fast != nil {
		e.fast.Forget(to)
	}
}

// fastSubmit runs the one-RTT write path at a follower: append the batch
// speculatively (Bal 0) at our own log end, broadcast the commands to
// every replica (the leader treats the broadcast as a forwarded
// submission, making the classic path the automatic fallback and the
// collision arbiter), and ack everyone so any replica — this one above
// all — can observe the fast quorum.
func (e *Engine) fastSubmit(cmds []protocol.Command, out *protocol.Output) {
	base := e.LastIndex() + 1
	ids := make([]uint64, len(cmds))
	for i, cmd := range cmds {
		ent := protocol.Entry{Index: base + int64(i), Term: e.term, Bal: 0, Cmd: cmd}
		e.log.Append(ent)
		out.AppendedEntries = append(out.AppendedEntries, ent)
		ids[i] = cmd.ID
		e.fastMine[cmd.ID] = true
		e.fastSeen[cmd.ID] = ent.Index
	}
	out.StateChanged = true
	acc := &protocol.MsgFastAccept{Cmds: append([]protocol.Command(nil), cmds...)}
	for _, p := range e.cfg.Peers {
		if p == e.cfg.ID {
			continue
		}
		out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: p, Msg: acc})
	}
	e.fastAck(base, ids, out)
}

// stepFastAccept accepts a submitter's broadcast. The leader runs its
// classic path on the commands (arbitration and fallback in one move); a
// follower appends them speculatively at its own log end. Replays never
// duplicate entries: a command already held is only re-acked, and only if
// its recorded slot still holds it — acking a slot we no longer hold
// would poison the quorum count.
func (e *Engine) stepFastAccept(from protocol.NodeID, m *protocol.MsgFastAccept, out *protocol.Output) {
	if e.fast == nil {
		return
	}
	var fresh []protocol.Command
	for _, cmd := range m.Cmds {
		if slot, seen := e.fastSeen[cmd.ID]; seen {
			if ent, ok := e.log.At(slot); ok && ent.Cmd.ID == cmd.ID {
				e.fastAck(slot, []uint64{cmd.ID}, out)
			}
			continue
		}
		fresh = append(fresh, cmd)
	}
	if len(fresh) == 0 {
		return
	}
	base := e.LastIndex() + 1
	ids := make([]uint64, len(fresh))
	if e.role == Leader {
		for i, cmd := range fresh {
			e.appendLocal(cmd, out)
			ids[i] = cmd.ID
			e.fastSeen[cmd.ID] = base + int64(i)
			e.fastRemote[cmd.ID] = true
		}
		e.broadcastAppend(out, false)
	} else {
		if e.term == 0 {
			return // no term yet: a fast round has no leader to arbitrate it
		}
		for i, cmd := range fresh {
			ent := protocol.Entry{Index: base + int64(i), Term: e.term, Bal: 0, Cmd: cmd}
			e.log.Append(ent)
			out.AppendedEntries = append(out.AppendedEntries, ent)
			ids[i] = cmd.ID
			e.fastSeen[cmd.ID] = ent.Index
		}
		out.StateChanged = true
	}
	e.fastAck(base, ids, out)
}

// fastAck broadcasts this replica's fast ack for ids at the contiguous
// slots base, base+1, ... and records it in the local tracker. MsgFastAck
// is a BarrierMessage: the persist pipeline holds it until the entries it
// covers are durable, exactly like a classic append ack.
func (e *Engine) fastAck(base int64, ids []uint64, out *protocol.Output) {
	ack := &protocol.MsgFastAck{Term: e.term, Base: base, IDs: ids, Leader: e.role == Leader}
	for _, p := range e.cfg.Peers {
		if p == e.cfg.ID {
			continue
		}
		out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: p, Msg: ack})
	}
	e.fast.Ack(e.cfg.ID, e.term, base, ids, e.role == Leader)
	e.tryFastCommit(out)
}

// stepFastAck records a peer's fast ack and checks for a fast commit. At
// the leader it doubles as conflict detection: a peer acking a different
// command at a slot we hold means its speculative suffix diverged, so
// replication backs up to the divergence point to repair it.
func (e *Engine) stepFastAck(from protocol.NodeID, m *protocol.MsgFastAck, out *protocol.Output) {
	if e.fast == nil {
		return
	}
	if m.Term > e.term {
		e.becomeFollower(m.Term, protocol.None, out)
	}
	e.fast.Ack(from, m.Term, m.Base, m.IDs, m.Leader)
	if e.role == Leader && m.Term == e.term {
		clamped := false
		for i, id := range m.IDs {
			slot := m.Base + int64(i)
			if ent, ok := e.log.At(slot); ok && ent.Cmd.ID != id {
				e.stats.Conflicts++
				if e.next[from] > slot && slot >= e.log.FirstIndex() {
					e.next[from] = slot
					clamped = true
				}
			}
		}
		if clamped {
			e.sendAppend(from, out, false)
		}
	}
	e.tryFastCommit(out)
}

// tryFastCommit advances the commit index through contiguously
// fast-confirmed slots: a slot commits the moment a fast quorum —
// leader included — acked the command our own log holds there, at the
// current term. The leader's mandatory participation is what makes this
// safe: its classic copy of the slot can never name a different command
// afterwards, so the classic path can only re-confirm the choice.
func (e *Engine) tryFastCommit(out *protocol.Output) {
	if e.fast == nil || e.fast.Term() != e.term {
		return
	}
	for {
		slot := e.commit + 1
		ent, ok := e.log.At(slot)
		if !ok || !e.fast.Confirmed(slot, ent.Cmd.ID) {
			return
		}
		e.fastDone[slot] = true
		e.advanceCommit(slot, out)
		out.StateChanged = true
	}
}

// dropSpeculative cleans fast-path bookkeeping for entries about to be
// truncated at or above from: their recorded slots become invalid, and
// any fast submission of our own that loses its log position — and is
// not in keep, about to be re-appended by the caller — is re-routed
// through the classic path so the command still commits.
func (e *Engine) dropSpeculative(from int64, keep map[uint64]bool, out *protocol.Output) {
	if e.fast == nil {
		return
	}
	var lost []protocol.Command
	for i := from; i <= e.LastIndex(); i++ {
		ent, ok := e.log.At(i)
		if !ok || ent.Bal != 0 {
			continue
		}
		id := ent.Cmd.ID
		delete(e.fastSeen, id)
		delete(e.fastDone, i)
		if e.fastMine[id] && !keep[id] {
			lost = append(lost, ent.Cmd)
		}
	}
	if len(lost) == 0 {
		return
	}
	if e.role != Leader && e.leader != protocol.None {
		out.Msgs = append(out.Msgs, protocol.Envelope{
			From: e.cfg.ID, To: e.leader, Msg: &MsgForward{Cmds: lost},
		})
		return
	}
	for _, cmd := range lost {
		if len(e.pending) < 4096 {
			e.pending = append(e.pending, cmd)
		}
	}
}

// specConflict reports whether our entry at idx names a command other
// than id, the leader's copy. Speculative entries make this check
// essential — they are not unique per (index, term), so the PrevTerm
// check alone cannot see the divergence — but it guards classic entries
// too: a mismatch there means our line diverged from the leader's and
// backing up to overwrite is always the safe answer.
func (e *Engine) specConflict(idx int64, id uint64) bool {
	ent, ok := e.log.At(idx)
	return ok && ent.Cmd.ID != id
}

// adoptFastSuffix runs the fast-path election recovery over the vote
// quorum's log reports (protocol.ChooseFast): for every slot above our
// commit index, adopt the value that may have been fast-chosen and
// re-append it at our own term, so the §5.4.2 no-op barrier appended
// right after commits the whole suffix classically. A classic (ratified)
// entry already in place keeps its original term, exactly like standard
// Raft.
func (e *Engine) adoptFastSuffix(out *protocol.Output) {
	participants := len(e.votes)
	n := len(e.cfg.Peers)
	maxSlot := e.LastIndex()
	for _, ents := range e.fastVotes {
		if l := len(ents); l > 0 && ents[l-1].Index > maxSlot {
			maxSlot = ents[l-1].Index
		}
	}
	var adopted []protocol.Entry
	changedFrom := int64(0)
	for slot := e.commit + 1; slot <= maxSlot; slot++ {
		var reports []protocol.FastReport
		own, ownHeld := e.log.At(slot)
		if ownHeld {
			reports = append(reports, protocol.FastReport{Bal: own.Bal, Cmd: own.Cmd})
		}
		for _, ents := range e.fastVotes {
			for i := range ents {
				if ents[i].Index == slot {
					reports = append(reports, protocol.FastReport{Bal: ents[i].Bal, Cmd: ents[i].Cmd})
					break
				}
			}
		}
		cmd, ok := protocol.ChooseFast(reports, participants, n)
		if !ok {
			break // nobody reported anything at or above this slot
		}
		if changedFrom == 0 && ownHeld && own.Bal > 0 && own.Cmd.ID == cmd.ID {
			continue // ratified entry already in place: keep its term history
		}
		if changedFrom == 0 {
			changedFrom = slot
		}
		adopted = append(adopted, protocol.Entry{Index: slot, Term: e.term, Bal: e.term, Cmd: cmd})
	}
	e.fastVotes = nil
	if changedFrom == 0 {
		return
	}
	keep := make(map[uint64]bool, len(adopted))
	for i := range adopted {
		keep[adopted[i].Cmd.ID] = true
	}
	e.dropSpeculative(changedFrom, keep, out)
	e.log.TruncateSuffix(changedFrom - 1)
	for _, ent := range adopted {
		e.log.Append(ent)
	}
	out.AppendedEntries = append(out.AppendedEntries, adopted...)
	out.StateChanged = true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
