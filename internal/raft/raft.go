// Package raft implements standard Raft per Figure 2 of the paper (black
// text only), following Ongaro & Ousterhout. It is the evaluation baseline
// and the protocol that provably does NOT refine MultiPaxos: a follower
// erases extraneous log entries to match the leader (a state transition
// MultiPaxos forbids), and entry terms are never overwritten, which forces
// the §5.4.2 restriction that a leader only commits entries of its own
// term by counting replicas.
package raft

import (
	"math/rand"
	"sort"

	"raftpaxos/internal/protocol"
)

// Role is the replica's current role.
type Role uint8

// Roles.
const (
	Follower Role = iota + 1
	Candidate
	Leader
)

// Wire stability: the message types below travel the live wire through internal/wire;
// exported field ORDER is the encoded layout and is frozen. Append new
// fields at the end and bump the transport's wireVersion.
//
// MsgVoteReq is Raft's RequestVote RPC.
type MsgVoteReq struct {
	Term      uint64
	LastIndex int64
	LastTerm  uint64
}

// WireSize implements protocol.Message.
func (m *MsgVoteReq) WireSize() int { return 24 }

// MsgVoteResp is Raft's RequestVote response. Unlike Raft*, it carries no
// log entries.
type MsgVoteResp struct {
	Term    uint64
	Granted bool
}

// WireSize implements protocol.Message.
func (m *MsgVoteResp) WireSize() int { return 9 }

// RequiresBarrier implements protocol.BarrierMessage: a vote grant
// promises the recorded term and vote are durable.
func (m *MsgVoteResp) RequiresBarrier() {}

// MsgAppendReq is Raft's AppendEntries RPC.
type MsgAppendReq struct {
	Term      uint64
	PrevIndex int64
	PrevTerm  uint64
	Entries   []protocol.Entry
	Commit    int64
	// ReadCtx is the highest pending ReadIndex confirmation context at the
	// leader (0 = none); the follower echoes it in its response, and a
	// quorum of echoes proves the leader's term was still current after
	// the reads arrived (see protocol.ReadTracker).
	ReadCtx uint64
}

// WireSize implements protocol.Message.
func (m *MsgAppendReq) WireSize() int {
	n := 48
	for i := range m.Entries {
		n += 24 + m.Entries[i].Cmd.WireSize()
	}
	return n
}

// CmdCount implements simnet.CmdCounter.
func (m *MsgAppendReq) CmdCount() int { return len(m.Entries) }

// MsgAppendResp is Raft's AppendEntries response.
type MsgAppendResp struct {
	Term      uint64
	Ok        bool
	LastIndex int64
	// ReadCtx echoes the request's ReadIndex confirmation context. A
	// reject still echoes: even a log mismatch acknowledges the sender's
	// leadership at this term, which is all the read path needs.
	ReadCtx uint64
}

// WireSize implements protocol.Message.
func (m *MsgAppendResp) WireSize() int { return 32 }

// RequiresBarrier implements protocol.BarrierMessage: an append ack
// promises the accepted entries are durable.
func (m *MsgAppendResp) RequiresBarrier() {}

// MsgForward carries client commands from a follower to the leader
// (etcd-style batched forwarding).
type MsgForward struct {
	Cmds []protocol.Command
}

// WireSize implements protocol.Message.
func (m *MsgForward) WireSize() int {
	n := 8
	for i := range m.Cmds {
		n += m.Cmds[i].WireSize()
	}
	return n
}

// CmdCount implements simnet.CmdCounter.
func (m *MsgForward) CmdCount() int { return len(m.Cmds) }

// Config configures a Raft replica.
type Config struct {
	ID    protocol.NodeID
	Peers []protocol.NodeID

	ElectionTicks  int
	HeartbeatTicks int
	MaxBatch       int
	MaxInflight    int
	Seed           int64
	// Passive disables the election timer (for pinning a benchmark leader).
	Passive bool
	// ReadIndex enables the fast linearizable read path: the leader
	// serves reads from the state machine after one leadership
	// confirmation round, with no log append and no fsync, and followers
	// forward reads to it. Off, reads replicate through the log like
	// writes (Section 4.4 of the paper — the baseline the simulated
	// figures measure).
	ReadIndex bool
	// UnsafeSkipReadQuorum serves ReadIndex reads without the leadership
	// confirmation round. Testing only: it lets the linearizability
	// checker's sabotage regression prove the checker catches the stale
	// reads a deposed leader then serves. Never enable in a deployment.
	UnsafeSkipReadQuorum bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ElectionTicks <= 0 {
		out.ElectionTicks = 10
	}
	if out.HeartbeatTicks <= 0 {
		out.HeartbeatTicks = 1
	}
	if out.MaxBatch <= 0 {
		out.MaxBatch = 1024
	}
	if out.MaxInflight <= 0 {
		out.MaxInflight = 16
	}
	return out
}

// Engine is a single Raft replica.
type Engine struct {
	cfg Config
	rng *rand.Rand

	term     uint64
	votedFor protocol.NodeID
	role     Role
	leader   protocol.NodeID

	// log is the uncompacted tail in global index space: the prefix at or
	// below log.Base() has been folded into a snapshot and truncated away
	// (TruncatePrefix), bounding replica memory by the tail length.
	log    protocol.Log
	commit int64

	votes map[protocol.NodeID]bool

	next     map[protocol.NodeID]int64
	match    map[protocol.NodeID]int64
	inflight map[protocol.NodeID]int

	// provider supplies the durable snapshot image a leader ships to a
	// peer stranded below the compaction base; xfers tracks one chunked
	// transfer per such peer, snapAsm reassembles an inbound one.
	provider protocol.SnapshotProvider
	xfers    map[protocol.NodeID]*protocol.SnapshotXfer
	snapAsm  protocol.SnapshotAssembly

	elapsed   int
	timeout   int
	hbElapsed int

	pending []protocol.Command
	// ReadIndex state: reads tracks confirmation rounds at the leader;
	// readBarrier is the leader's last log index at election — a read's
	// index is clamped up to it, because entries a predecessor committed
	// are only provably covered once this leader's own barrier entry
	// commits (§6.4 / §8 of the Raft dissertation); pendingReads buffers
	// reads submitted while no leader is known.
	reads        protocol.ReadTracker
	readBarrier  int64
	pendingReads []protocol.Command
}

var _ protocol.Engine = (*Engine)(nil)

// New builds a Raft replica.
func New(cfg Config) *Engine {
	c := cfg.withDefaults()
	e := &Engine{
		cfg:      c,
		rng:      rand.New(rand.NewSource(c.Seed ^ int64(c.ID)<<17)),
		votedFor: protocol.None,
		role:     Follower,
		leader:   protocol.None,
	}
	e.resetTimeout()
	return e
}

// ID implements protocol.Engine.
func (e *Engine) ID() protocol.NodeID { return e.cfg.ID }

// Leader implements protocol.Engine.
func (e *Engine) Leader() protocol.NodeID { return e.leader }

// IsLeader implements protocol.Engine.
func (e *Engine) IsLeader() bool { return e.role == Leader }

// Term returns the current term.
func (e *Engine) Term() uint64 { return e.term }

// VotedFor returns the replica voted for in the current term (None when
// no vote was cast); live drivers persist it alongside the term.
func (e *Engine) VotedFor() protocol.NodeID { return e.votedFor }

// RestoreHardState primes term and vote from durable storage before the
// engine processes any input, so a restarted replica cannot cast a
// second vote in a term it already voted in.
func (e *Engine) RestoreHardState(term uint64, votedFor protocol.NodeID) {
	if term > e.term {
		e.term = term
		e.votedFor = votedFor
	}
}

// SetSnapshotProvider implements protocol.SnapshotSender: the driver
// wires its snapshot store so a leader can ship images to peers that
// fell behind the compaction base.
func (e *Engine) SetSnapshotProvider(p protocol.SnapshotProvider) { e.provider = p }

// RestoreSnapshot primes the engine at a snapshot boundary before
// RestoreLog delivers the tail: the log starts at index (whose entry had
// term) and everything at or below it is committed.
func (e *Engine) RestoreSnapshot(index int64, term uint64) {
	if e.log.LastIndex() > 0 {
		return
	}
	e.log.Restore(index, term, nil)
	if index > e.commit {
		e.commit = index
	}
}

// RestoreLog adopts a durably logged tail after a restart, before the
// engine processes any input; the tail continues wherever RestoreSnapshot
// anchored the log (index 1 on a snapshot-free store). Entries are
// persisted at accept time, so the tail normally extends past the saved
// commit index: the suffix comes back accepted-but-uncommitted (it may
// even conflict with the next leader's log and be overwritten), which is
// exactly what lets a quorum-acked suffix survive a full-cluster crash.
// Commit is clamped to the restored length.
func (e *Engine) RestoreLog(ents []protocol.Entry, commit int64) {
	if e.log.Len() > 0 || len(ents) == 0 {
		return
	}
	if ents[0].Index != e.log.LastIndex()+1 {
		return // tail does not meet the snapshot boundary: driver bug
	}
	for _, ent := range ents {
		e.log.Append(ent)
	}
	if commit > e.log.LastIndex() {
		commit = e.log.LastIndex()
	}
	if commit > e.commit {
		e.commit = commit
	}
}

// TruncatePrefix implements protocol.PrefixTruncator: drop in-memory
// entries at or below through (clamped to the commit index). All index
// arithmetic stays in global log-index space.
func (e *Engine) TruncatePrefix(through int64) {
	if through > e.commit {
		through = e.commit
	}
	e.log.TruncatePrefix(through)
}

// LogLen returns the number of entries held in memory (the uncompacted
// tail).
func (e *Engine) LogLen() int { return e.log.Len() }

// FirstIndex returns the lowest log index still held in memory.
func (e *Engine) FirstIndex() int64 { return e.log.FirstIndex() }

// CommitIndex returns the highest committed index.
func (e *Engine) CommitIndex() int64 { return e.commit }

// LastIndex returns the last log index.
func (e *Engine) LastIndex() int64 { return e.log.LastIndex() }

// EntryAt returns the entry at index i (1-based); compacted indexes
// report false.
func (e *Engine) EntryAt(i int64) (protocol.Entry, bool) {
	return e.log.At(i)
}

func (e *Engine) termAt(i int64) uint64 { return e.log.TermAt(i) }

func (e *Engine) quorum() int { return protocol.Quorum(len(e.cfg.Peers)) }

func (e *Engine) resetTimeout() {
	e.elapsed = 0
	e.timeout = e.cfg.ElectionTicks + e.rng.Intn(e.cfg.ElectionTicks)
}

// Tick implements protocol.Engine.
func (e *Engine) Tick() protocol.Output {
	var out protocol.Output
	if e.role == Leader {
		e.hbElapsed++
		if e.hbElapsed >= e.cfg.HeartbeatTicks {
			e.hbElapsed = 0
			e.broadcastAppend(&out, true)
		}
		return out
	}
	if e.cfg.Passive {
		return out
	}
	e.elapsed++
	if e.elapsed >= e.timeout {
		e.campaign(&out)
	}
	return out
}

// Campaign forces an immediate election.
func (e *Engine) Campaign() protocol.Output {
	var out protocol.Output
	e.campaign(&out)
	return out
}

func (e *Engine) campaign(out *protocol.Output) {
	e.term++
	e.role = Candidate
	// Pending confirmation rounds die with the leadership we just gave
	// up: echoes are ignored while Candidate, and winning re-arms the
	// tracker fresh — without this, forced re-election strands the reads.
	e.reads.FailAll(out)
	e.leader = protocol.None
	e.votedFor = e.cfg.ID
	e.votes = map[protocol.NodeID]bool{e.cfg.ID: true}
	e.resetTimeout()
	out.StateChanged = true
	req := &MsgVoteReq{Term: e.term, LastIndex: e.LastIndex(), LastTerm: e.termAt(e.LastIndex())}
	for _, p := range e.cfg.Peers {
		if p == e.cfg.ID {
			continue
		}
		out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: p, Msg: req})
	}
	if len(e.cfg.Peers) == 1 {
		e.becomeLeader(out)
	}
}

func (e *Engine) becomeFollower(term uint64, leader protocol.NodeID, out *protocol.Output) {
	if term > e.term {
		e.term = term
		e.votedFor = protocol.None
		out.StateChanged = true
	}
	e.role = Follower
	e.xfers = nil // outbound transfers are leader state
	// Reads awaiting confirmation die with the leadership: fail them fast
	// so clients retry at the new leader instead of hanging (no-op unless
	// this replica was leading).
	e.reads.FailAll(out)
	if leader != protocol.None {
		e.leader = leader
		e.flushPending(out)
	}
	e.resetTimeout()
}

// Step implements protocol.Engine.
func (e *Engine) Step(from protocol.NodeID, msg protocol.Message) protocol.Output {
	var out protocol.Output
	switch m := msg.(type) {
	case *MsgVoteReq:
		e.stepVoteReq(from, m, &out)
	case *MsgVoteResp:
		e.stepVoteResp(from, m, &out)
	case *MsgAppendReq:
		e.stepAppendReq(from, m, &out)
	case *MsgAppendResp:
		e.stepAppendResp(from, m, &out)
	case *protocol.MsgInstallSnapshot:
		e.stepInstallSnapshot(from, m, &out)
	case *protocol.MsgInstallSnapshotResp:
		e.stepInstallSnapshotResp(from, m, &out)
	case *MsgForward:
		out.Merge(e.SubmitBatch(m.Cmds))
	case *protocol.MsgReadForward:
		out.Merge(e.SubmitReadBatch(m.Cmds))
	}
	return out
}

func (e *Engine) stepVoteReq(from protocol.NodeID, m *MsgVoteReq, out *protocol.Output) {
	if m.Term > e.term {
		e.becomeFollower(m.Term, protocol.None, out)
	}
	upToDate := m.LastTerm > e.termAt(e.LastIndex()) ||
		(m.LastTerm == e.termAt(e.LastIndex()) && m.LastIndex >= e.LastIndex())
	grant := m.Term == e.term &&
		(e.votedFor == protocol.None || e.votedFor == from) &&
		e.role != Leader && upToDate
	resp := &MsgVoteResp{Term: e.term}
	if grant {
		e.votedFor = from
		e.resetTimeout()
		resp.Granted = true
		out.StateChanged = true
	}
	out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: from, Msg: resp})
}

func (e *Engine) stepVoteResp(from protocol.NodeID, m *MsgVoteResp, out *protocol.Output) {
	if m.Term > e.term {
		e.becomeFollower(m.Term, protocol.None, out)
		return
	}
	if e.role != Candidate || m.Term != e.term || !m.Granted {
		return
	}
	e.votes[from] = true
	if len(e.votes) >= e.quorum() {
		e.becomeLeader(out)
	}
}

func (e *Engine) becomeLeader(out *protocol.Output) {
	e.role = Leader
	e.leader = e.cfg.ID
	e.votes = nil
	e.next = make(map[protocol.NodeID]int64, len(e.cfg.Peers))
	e.match = make(map[protocol.NodeID]int64, len(e.cfg.Peers))
	e.inflight = make(map[protocol.NodeID]int, len(e.cfg.Peers))
	e.xfers = make(map[protocol.NodeID]*protocol.SnapshotXfer)
	for _, p := range e.cfg.Peers {
		e.next[p] = e.LastIndex() + 1
		e.match[p] = 0
	}
	e.match[e.cfg.ID] = e.LastIndex()
	e.hbElapsed = 0
	out.StateChanged = true
	// A no-op barrier entry lets the new leader commit its predecessors'
	// entries despite the §5.4.2 restriction.
	e.appendLocal(protocol.Command{Op: protocol.OpNop}, out)
	// ReadIndex reads may not be served below the barrier entry: entries a
	// predecessor committed are only provably reflected in our commit
	// index once an entry of our own term (the no-op above) commits.
	e.readBarrier = e.LastIndex()
	e.reads.Reset(e.quorum(), e.cfg.UnsafeSkipReadQuorum)
	e.broadcastAppend(out, true)
	e.flushPending(out)
}

// Submit implements protocol.Engine.
func (e *Engine) Submit(cmd protocol.Command) protocol.Output {
	return e.SubmitBatch([]protocol.Command{cmd})
}

// SubmitBatch implements protocol.BatchSubmitter: the leader appends the
// whole batch locally and replicates it in one AppendEntries broadcast.
func (e *Engine) SubmitBatch(cmds []protocol.Command) protocol.Output {
	var out protocol.Output
	if len(cmds) == 0 {
		return out
	}
	switch {
	case e.role == Leader:
		for _, cmd := range cmds {
			e.appendLocal(cmd, &out)
		}
		e.broadcastAppend(&out, false)
	case e.leader != protocol.None:
		out.Msgs = append(out.Msgs, protocol.Envelope{
			From: e.cfg.ID, To: e.leader,
			Msg: &MsgForward{Cmds: append([]protocol.Command(nil), cmds...)},
		})
	default:
		for _, cmd := range cmds {
			if len(e.pending) < 4096 {
				e.pending = append(e.pending, cmd)
				continue
			}
			kind := protocol.ReplyWrite
			if cmd.Op == protocol.OpGet {
				kind = protocol.ReplyRead
			}
			out.Replies = append(out.Replies, protocol.ClientReply{
				Kind: kind, CmdID: cmd.ID, Client: cmd.Client, Err: protocol.ErrNotLeader,
			})
		}
	}
	return out
}

// SubmitRead implements protocol.Engine: with ReadIndex enabled, the
// leader serves the read from the state machine after one leadership
// confirmation round — no log append, no fsync; otherwise reads
// replicate through the log.
func (e *Engine) SubmitRead(cmd protocol.Command) protocol.Output {
	return e.SubmitReadBatch([]protocol.Command{cmd})
}

// SubmitReadBatch implements protocol.ReadBatchSubmitter: the whole batch
// shares one read index and one confirmation round.
func (e *Engine) SubmitReadBatch(cmds []protocol.Command) protocol.Output {
	var out protocol.Output
	if len(cmds) == 0 {
		return out
	}
	for i := range cmds {
		cmds[i].Op = protocol.OpGet
	}
	if !e.cfg.ReadIndex {
		return e.SubmitBatch(cmds)
	}
	if e.role == Leader {
		e.addReads(cmds, &out)
	} else {
		protocol.RouteReads(e.cfg.ID, e.leader, &e.pendingReads, cmds, &out)
	}
	return out
}

// addReads opens a ReadIndex confirmation round at the leader: the read
// index is the commit index, clamped up to the election barrier, and a
// heartbeat broadcast carrying the batch's ctx starts the confirmation
// immediately instead of waiting out the heartbeat interval.
func (e *Engine) addReads(cmds []protocol.Command, out *protocol.Output) {
	idx := e.commit
	if e.readBarrier > idx {
		idx = e.readBarrier
	}
	e.reads.Add(cmds, idx, out)
	if e.reads.Pending() > 0 {
		e.broadcastAppend(out, true)
	}
}

func (e *Engine) flushPending(out *protocol.Output) {
	if reads := e.pendingReads; len(reads) > 0 {
		e.pendingReads = nil
		out.Merge(e.SubmitReadBatch(reads))
	}
	if len(e.pending) == 0 {
		return
	}
	cmds := e.pending
	e.pending = nil
	if e.role == Leader {
		for _, c := range cmds {
			e.appendLocal(c, out)
		}
		e.broadcastAppend(out, false)
		return
	}
	out.Msgs = append(out.Msgs, protocol.Envelope{
		From: e.cfg.ID, To: e.leader, Msg: &MsgForward{Cmds: cmds},
	})
}

func (e *Engine) appendLocal(cmd protocol.Command, out *protocol.Output) {
	// In standard Raft the per-entry ballot simply mirrors the creation
	// term and is never rewritten.
	ent := protocol.Entry{Index: e.LastIndex() + 1, Term: e.term, Bal: e.term, Cmd: cmd}
	e.log.Append(ent)
	e.match[e.cfg.ID] = e.LastIndex()
	// The leader is part of the commit quorum: its own entry must be
	// durable before it can count itself, so the local append rides the
	// same persist-before-ack barrier as a follower's accept.
	out.AppendedEntries = append(out.AppendedEntries, ent)
	out.StateChanged = true
	if len(e.cfg.Peers) == 1 {
		e.maybeCommit(out)
	}
}

func (e *Engine) broadcastAppend(out *protocol.Output, heartbeat bool) {
	for _, p := range e.cfg.Peers {
		if p == e.cfg.ID {
			continue
		}
		e.sendAppend(p, out, heartbeat)
	}
}

func (e *Engine) sendAppend(p protocol.NodeID, out *protocol.Output, heartbeat bool) {
	next := e.next[p]
	if next > e.LastIndex() && !heartbeat {
		return
	}
	if e.inflight[p] >= e.cfg.MaxInflight && !heartbeat {
		return
	}
	if next < e.log.FirstIndex() {
		// The compacted prefix cannot be resent entry-by-entry; start at
		// the held tail (catching a peer up past the snapshot needs a
		// snapshot transfer, not an append).
		next = e.log.FirstIndex()
	}
	end := e.LastIndex()
	if end > next-1+int64(e.cfg.MaxBatch) {
		end = next - 1 + int64(e.cfg.MaxBatch)
	}
	var ents []protocol.Entry
	if end >= next {
		ents = e.log.Slice(next, end)
	}
	req := &MsgAppendReq{
		Term:      e.term,
		PrevIndex: next - 1,
		PrevTerm:  e.termAt(next - 1),
		Entries:   ents,
		Commit:    e.commit,
		ReadCtx:   e.reads.MaxCtx(),
	}
	// The ctx is now in flight: later reads must open a fresh one (an
	// echo of this ctx only proves leadership up to this send).
	e.reads.MarkSent()
	out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: p, Msg: req})
	if end >= next {
		e.next[p] = end + 1
		e.inflight[p]++
	}
}

func (e *Engine) stepAppendReq(from protocol.NodeID, m *MsgAppendReq, out *protocol.Output) {
	resp := &MsgAppendResp{Term: e.term, LastIndex: e.LastIndex()}
	if m.Term < e.term {
		out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: from, Msg: resp})
		return
	}
	e.becomeFollower(m.Term, from, out)
	resp.Term = e.term
	// Echo the read confirmation ctx whenever we answer at the sender's
	// term — even a log-mismatch reject acknowledges its leadership,
	// which is all the ReadIndex round needs.
	resp.ReadCtx = m.ReadCtx

	switch {
	case m.PrevIndex > e.LastIndex():
		resp.LastIndex = e.LastIndex()
	case m.PrevIndex >= e.log.Base() && e.termAt(m.PrevIndex) != m.PrevTerm:
		// A PrevIndex below the compaction base cannot conflict: that
		// prefix is committed, hence identical on any current leader.
		resp.LastIndex = m.PrevIndex - 1
	default:
		// Accept. Standard Raft: find the first conflicting entry, ERASE
		// everything from there on, then append — the follower's log is
		// forced to match the leader's, even if that shortens it. This is
		// the transition with no MultiPaxos counterpart (Section 3).
		// Entries at or below the compaction base are committed and
		// snapshotted here; they can never conflict and are skipped.
		// Everything newly written — from the first conflicting or fresh
		// index on — is emitted for persistence before the ack leaves
		// (Output.AppendedEntries): the store's overwriting append erases
		// the same stale suffix the in-memory truncation did.
		for k, ent := range m.Entries {
			if ent.Index <= e.log.Base() {
				continue
			}
			if ent.Index <= e.LastIndex() && e.termAt(ent.Index) != ent.Term {
				e.log.TruncateSuffix(ent.Index - 1) // erase conflicting suffix
			}
			if ent.Index > e.LastIndex() {
				for _, rest := range m.Entries[k:] {
					e.log.Append(rest)
				}
				out.AppendedEntries = append(out.AppendedEntries, m.Entries[k:]...)
				break
			}
		}
		resp.Ok = true
		resp.LastIndex = m.PrevIndex + int64(len(m.Entries))
		out.StateChanged = true
		if c := min64(m.Commit, resp.LastIndex); c > e.commit {
			e.advanceCommit(c, out)
		}
	}
	out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: from, Msg: resp})
}

func (e *Engine) stepAppendResp(from protocol.NodeID, m *MsgAppendResp, out *protocol.Output) {
	if m.Term > e.term {
		e.becomeFollower(m.Term, protocol.None, out)
		return
	}
	if e.role != Leader || m.Term != e.term {
		return
	}
	if m.ReadCtx > 0 {
		// The follower processed a message we sent while still leading:
		// that confirms every read batch at or below the echoed ctx.
		e.reads.Ack(from, m.ReadCtx, out)
	}
	if e.inflight[from] > 0 {
		e.inflight[from]--
	}
	if !m.Ok {
		e.next[from] = min64(m.LastIndex+1, e.LastIndex()+1)
		if e.next[from] < 1 {
			e.next[from] = 1
		}
		if e.next[from] < e.log.FirstIndex() {
			// The follower needs entries below our compaction base, which
			// log replay can never provide: ship the snapshot image instead.
			// (Without a provider this degrades to heartbeat-cadence probes.)
			e.beginSnapshotTransfer(from, out)
			return
		}
		e.sendAppend(from, out, false)
		return
	}
	if m.LastIndex > e.match[from] {
		e.match[from] = m.LastIndex
	}
	if e.next[from] <= e.match[from] {
		e.next[from] = e.match[from] + 1
	}
	e.maybeCommit(out)
	if e.next[from] <= e.LastIndex() {
		e.sendAppend(from, out, false)
	}
}

// beginSnapshotTransfer starts (or nudges) the chunked shipment of the
// latest durable snapshot to p, whose next index fell below the held
// tail. Chunks are ack-paced — one in flight, advanced per response — so
// heartbeats on the same per-peer stream are never head-of-line blocked
// behind a multi-megabyte image.
func (e *Engine) beginSnapshotTransfer(p protocol.NodeID, out *protocol.Output) {
	if x, ok := e.xfers[p]; ok {
		// Already transferring: re-send the current chunk only after a
		// full heartbeat-cadence interval of silence (chunk or ack lost).
		if x.Retry() {
			if chunk := x.Chunk(e.term); chunk != nil {
				out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: p, Msg: chunk})
			}
		}
		return
	}
	if e.provider == nil {
		return // no image source: heartbeat probing is all we can do
	}
	img, ok := e.provider.LatestSnapshotImage()
	if !ok || img.Index+1 < e.log.FirstIndex() {
		// No durable image, or it predates our held tail: the peer could
		// not resume replay above it, so shipping it would not help.
		return
	}
	x := &protocol.SnapshotXfer{Img: img}
	e.xfers[p] = x
	if chunk := x.Chunk(e.term); chunk != nil {
		out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: p, Msg: chunk})
	}
}

// stepInstallSnapshot receives one chunk of a leader's snapshot,
// assembling the image and adopting it when complete: the log re-anchors
// at the image boundary and the driver is told (Output.InstalledSnapshot)
// to persist it and restore the state machine, after which replication
// resumes from the snapshot index.
func (e *Engine) stepInstallSnapshot(from protocol.NodeID, m *protocol.MsgInstallSnapshot, out *protocol.Output) {
	resp := &protocol.MsgInstallSnapshotResp{Term: e.term, Index: m.Index}
	if m.Term < e.term {
		out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: from, Msg: resp})
		return
	}
	e.becomeFollower(m.Term, from, out)
	resp.Term = e.term
	if m.Index <= e.commit {
		// Already covered locally (duplicate transfer or a stale chunk):
		// nothing to install; the ack lets the leader resume appends.
		e.snapAsm.Reset()
		resp.Installed = true
		resp.NextOffset = m.Offset + int64(len(m.Data))
	} else {
		img, done, next := e.snapAsm.Accept(m)
		if next < 0 {
			// A better transfer is in progress: no ack, so this sender's
			// damped retries cannot clobber the winning image's progress.
			return
		}
		resp.NextOffset = next
		if done {
			e.installSnapshot(img, out)
			resp.Installed = true
		}
	}
	out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: from, Msg: resp})
}

// installSnapshot adopts a fully assembled image: everything at or below
// its index is committed and lives in the image, so the in-memory log
// re-anchors there and the driver persists the image before applying
// anything above it. A held suffix beyond the image survives only when
// its entry at the boundary agrees with the image's term (etcd-raft's
// rule) — keeping a conflicting suffix would also record the conflicting
// local term as the base term, and every resumed append at
// PrevIndex=img.Index would then be rejected forever.
func (e *Engine) installSnapshot(img protocol.SnapshotImage, out *protocol.Output) {
	if img.Index <= e.commit {
		return
	}
	if ent, ok := e.log.At(img.Index); ok && ent.Term == img.Term && img.Index < e.log.LastIndex() {
		e.log.TruncatePrefix(img.Index)
	} else {
		e.log.Restore(img.Index, img.Term, nil)
	}
	e.commit = img.Index
	out.StateChanged = true
	out.InstalledSnapshot = &img
}

// stepInstallSnapshotResp paces an outbound transfer: each ack releases
// the next chunk, and the final Installed ack resets the follower's
// replication state to the snapshot boundary so pipelining resumes
// immediately instead of stalling until the next heartbeat probe.
func (e *Engine) stepInstallSnapshotResp(from protocol.NodeID, m *protocol.MsgInstallSnapshotResp, out *protocol.Output) {
	if m.Term > e.term {
		e.becomeFollower(m.Term, protocol.None, out)
		return
	}
	if e.role != Leader || m.Term != e.term {
		return
	}
	x := e.xfers[from]
	if x == nil || x.Img.Index != m.Index {
		return // ack from an older transfer
	}
	if m.Installed {
		delete(e.xfers, from)
		if m.Index > e.match[from] {
			e.match[from] = m.Index
		}
		e.next[from] = e.match[from] + 1
		e.inflight[from] = 0
		e.maybeCommit(out)
		if e.next[from] <= e.LastIndex() {
			e.sendAppend(from, out, false)
		}
		return
	}
	x.Ack(m.NextOffset)
	if chunk := x.Chunk(e.term); chunk != nil {
		out.Msgs = append(out.Msgs, protocol.Envelope{From: e.cfg.ID, To: from, Msg: chunk})
	} else {
		delete(e.xfers, from) // receiver ran past the image end: abandon
	}
}

// maybeCommit advances commit to the quorum watermark, restricted by
// §5.4.2: only entries of the current term may be committed by counting.
func (e *Engine) maybeCommit(out *protocol.Output) {
	if e.role != Leader {
		return
	}
	matches := make([]int64, 0, len(e.cfg.Peers))
	for _, p := range e.cfg.Peers {
		matches = append(matches, e.match[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	candidate := matches[e.quorum()-1]
	// §5.4.2: walk back to the highest quorum-matched index whose entry is
	// from the current term.
	for candidate > e.commit && e.termAt(candidate) != e.term {
		candidate--
	}
	if candidate > e.commit && e.termAt(candidate) == e.term {
		e.advanceCommit(candidate, out)
	}
}

func (e *Engine) advanceCommit(to int64, out *protocol.Output) {
	for i := e.commit + 1; i <= to; i++ {
		ent, _ := e.log.At(i)
		out.Commits = append(out.Commits, protocol.CommitInfo{
			Entry: ent,
			Reply: e.role == Leader && ent.Cmd.Client != protocol.None,
		})
	}
	e.commit = to
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
