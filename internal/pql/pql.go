// Package pql implements Paxos Quorum Lease (Moraru et al.) on MultiPaxos,
// per Figure 11 / Appendix A.1 of the paper. It is the optimization A∆ in
// the porting framework: a non-mutating extension of MultiPaxos whose
// added/modified subactions never write MultiPaxos state.
//
//   - Added subactions: Read / LocalRead (serve a strongly consistent read
//     from the local copy when holding leases from a quorum and every
//     instance modifying the key is chosen), GrantLease, UpdateTimer.
//   - Modified subactions: Phase2b attaches the leases granted by the
//     acceptor to its acceptOK; Learn additionally waits for an acceptOK
//     from every granted lease holder before declaring the value chosen.
package pql

import (
	"raftpaxos/internal/lease"
	"raftpaxos/internal/multipaxos"
	"raftpaxos/internal/protocol"
)

// Wire stability: read requests travel the live wire through internal/wire;
// exported field ORDER is the encoded layout and is frozen. Append new
// fields at the end and bump the transport's wireVersion.
//
// MsgReadReq forwards a read to the leader when the local replica has no
// active quorum lease.
type MsgReadReq struct {
	Cmd protocol.Command
}

// WireSize implements protocol.Message.
func (m *MsgReadReq) WireSize() int { return 8 + m.Cmd.WireSize() }

// Config configures a PQL replica.
type Config struct {
	Paxos multipaxos.Config
	// LeaseTicks is the lease duration (paper: 2 s).
	LeaseTicks int
	// RenewTicks is the grant renewal period (paper: 0.5 s).
	RenewTicks int
	// SkewMarginTicks is the holder-side guard band against clock skew
	// (0 = lease package default, LeaseTicks/8). See internal/lease.
	SkewMarginTicks int
	// UnsafeNoLeaseGuard disables the guard band — sabotage tests only.
	UnsafeNoLeaseGuard bool
}

type pendingRead struct {
	cmd     protocol.Command
	waitIdx int64
}

// Engine wraps a MultiPaxos replica with quorum-lease reads.
type Engine struct {
	inner  *multipaxos.Engine
	leases *lease.Table

	// lastWrite[k] is the highest instance of a write to k seen locally.
	lastWrite map[string]int64
	// reported[p] is the holder set acceptor p attached to its last
	// acceptOK, with the tick it arrived (stale reports expire with the
	// grantor's leases); ackedUpTo[p] tracks the highest instance p acked.
	reported   map[protocol.NodeID][]protocol.NodeID
	reportedAt map[protocol.NodeID]int
	leaseTicks int
	ackedUpTo  map[protocol.NodeID]int64
	pending    []pendingRead
}

var _ protocol.Engine = (*Engine)(nil)

// New builds the engine, installing hooks into the inner MultiPaxos
// replica; the caller must not install its own.
func New(cfg Config) *Engine {
	e := &Engine{
		lastWrite:  make(map[string]int64),
		reported:   make(map[protocol.NodeID][]protocol.NodeID),
		reportedAt: make(map[protocol.NodeID]int),
		leaseTicks: cfg.LeaseTicks,
		ackedUpTo:  make(map[protocol.NodeID]int64),
	}
	if e.leaseTicks <= 0 {
		e.leaseTicks = 200
	}
	e.leases = lease.NewTable(lease.Config{
		Self:            cfg.Paxos.ID,
		Peers:           cfg.Paxos.Peers,
		DurationTicks:   cfg.LeaseTicks,
		RenewTicks:      cfg.RenewTicks,
		SkewMarginTicks: cfg.SkewMarginTicks,
		UnsafeNoGuard:   cfg.UnsafeNoLeaseGuard,
	})
	pcfg := cfg.Paxos
	pcfg.Hooks = multipaxos.Hooks{
		LocalHolders: e.leases.Holders,
		OnAcceptOK:   e.onAcceptOK,
		GateChosen:   e.gateChosen,
		OnAccept:     e.onAccept,
	}
	e.inner = multipaxos.New(pcfg)
	return e
}

// Inner exposes the wrapped MultiPaxos replica.
func (e *Engine) Inner() *multipaxos.Engine { return e.inner }

// Leases exposes the lease table.
func (e *Engine) Leases() *lease.Table { return e.leases }

// ID implements protocol.Engine.
func (e *Engine) ID() protocol.NodeID { return e.inner.ID() }

// Leader implements protocol.Engine.
func (e *Engine) Leader() protocol.NodeID { return e.inner.Leader() }

// IsLeader implements protocol.Engine.
func (e *Engine) IsLeader() bool { return e.inner.IsLeader() }

// --- hooks ---

func (e *Engine) onAcceptOK(from protocol.NodeID, idxs []int64, holders []protocol.NodeID) {
	e.reported[from] = holders
	e.reportedAt[from] = e.leases.Now()
	for _, i := range idxs {
		if i > e.ackedUpTo[from] {
			e.ackedUpTo[from] = i
		}
	}
}

// gateChosen implements the modified Learn (Figure 11 lines 18-25): the
// instance is chosen only once every granted lease holder acknowledged it.
func (e *Engine) gateChosen(idx int64, acks map[protocol.NodeID]bool) bool {
	now := e.leases.Now()
	holderSet := make(map[protocol.NodeID]bool)
	for q, hs := range e.reported {
		if e.reportedAt[q]+e.leaseTicks <= now {
			continue // grantor silent past a full lease: its grants expired
		}
		for _, h := range hs {
			holderSet[h] = true
		}
	}
	for _, h := range e.leases.Holders() {
		holderSet[h] = true
	}
	self := e.inner.ID()
	for h := range holderSet {
		if h == self {
			continue // the proposer implicitly acknowledged its own accept
		}
		if !acks[h] && e.ackedUpTo[h] < idx {
			return false
		}
	}
	return true
}

func (e *Engine) onAccept(insts []multipaxos.InstanceInfo) {
	for _, in := range insts {
		if in.Cmd.Op == protocol.OpPut && in.Idx > e.lastWrite[in.Cmd.Key] {
			e.lastWrite[in.Cmd.Key] = in.Idx
		}
	}
}

// --- protocol.Engine ---

// Tick implements protocol.Engine.
func (e *Engine) Tick() protocol.Output {
	var out protocol.Output
	out.Msgs = append(out.Msgs, e.leases.Tick()...)
	out.Merge(e.inner.Tick())
	out.Merge(e.inner.RecheckChosen())
	e.flushReads(&out)
	return out
}

// Step implements protocol.Engine.
func (e *Engine) Step(from protocol.NodeID, msg protocol.Message) protocol.Output {
	var out protocol.Output
	if msgs, handled := e.leases.Step(from, msg); handled {
		out.Msgs = append(out.Msgs, msgs...)
		return out
	}
	if m, ok := msg.(*MsgReadReq); ok {
		out.Merge(e.SubmitRead(m.Cmd))
		return out
	}
	out.Merge(e.inner.Step(from, msg))
	e.flushReads(&out)
	return out
}

// Submit implements protocol.Engine (writes are plain MultiPaxos).
func (e *Engine) Submit(cmd protocol.Command) protocol.Output {
	out := e.inner.Submit(cmd)
	e.flushReads(&out)
	return out
}

// SubmitBatch implements protocol.BatchSubmitter (writes are plain
// MultiPaxos).
func (e *Engine) SubmitBatch(cmds []protocol.Command) protocol.Output {
	out := e.inner.SubmitBatch(cmds)
	e.flushReads(&out)
	return out
}

// Term exposes MultiPaxos's ballot for the live driver's hard-state
// snapshot.
func (e *Engine) Term() uint64 { return e.inner.Term() }

// CommitIndex exposes MultiPaxos's chosen prefix for the live driver's
// hard-state snapshot.
func (e *Engine) CommitIndex() int64 { return e.inner.CommitIndex() }

// RestoreHardState forwards the live driver's restart restore to MultiPaxos.
func (e *Engine) RestoreHardState(term uint64, votedFor protocol.NodeID) {
	e.inner.RestoreHardState(term, votedFor)
}

// RestoreLog forwards the live driver's restart restore to MultiPaxos.
func (e *Engine) RestoreLog(ents []protocol.Entry, commit int64) {
	e.inner.RestoreLog(ents, commit)
}

// RestoreSnapshot forwards the snapshot boundary to MultiPaxos.
func (e *Engine) RestoreSnapshot(index int64, term uint64) {
	e.inner.RestoreSnapshot(index, term)
}

// SetSnapshotProvider implements protocol.SnapshotSender via MultiPaxos,
// so a live driver's snapshot store reaches the inner engine and a
// leader can ship images to compaction-stranded peers.
func (e *Engine) SetSnapshotProvider(p protocol.SnapshotProvider) {
	e.inner.SetSnapshotProvider(p)
}

// TruncatePrefix implements protocol.PrefixTruncator via MultiPaxos.
func (e *Engine) TruncatePrefix(through int64) { e.inner.TruncatePrefix(through) }

// LogLen reports MultiPaxos's in-memory tail length.
func (e *Engine) LogLen() int { return e.inner.LogLen() }

// SubmitRead implements protocol.Engine: the LocalRead subaction.
func (e *Engine) SubmitRead(cmd protocol.Command) protocol.Output {
	cmd.Op = protocol.OpGet
	var out protocol.Output
	if e.leases.HasQuorumLease() {
		waitIdx := e.lastWrite[cmd.Key]
		if waitIdx <= e.inner.ChosenPrefix() {
			out.Replies = append(out.Replies, protocol.ClientReply{
				Kind: protocol.ReplyRead, CmdID: cmd.ID, Client: cmd.Client, Key: cmd.Key,
			})
			return out
		}
		e.pending = append(e.pending, pendingRead{cmd: cmd, waitIdx: waitIdx})
		return out
	}
	return e.inner.SubmitRead(cmd)
}

func (e *Engine) flushReads(out *protocol.Output) {
	if len(e.pending) == 0 {
		return
	}
	chosen := e.inner.ChosenPrefix()
	hasLease := e.leases.HasQuorumLease()
	keep := e.pending[:0]
	for _, pr := range e.pending {
		switch {
		case !hasLease:
			out.Merge(e.inner.SubmitRead(pr.cmd))
		case pr.waitIdx <= chosen:
			out.Replies = append(out.Replies, protocol.ClientReply{
				Kind: protocol.ReplyRead, CmdID: pr.cmd.ID, Client: pr.cmd.Client, Key: pr.cmd.Key,
			})
		default:
			keep = append(keep, pr)
		}
	}
	e.pending = keep
}
