package pql_test

import (
	"testing"

	"raftpaxos/internal/multipaxos"
	"raftpaxos/internal/pql"
	"raftpaxos/internal/protocol"
	"raftpaxos/internal/testcluster"
)

func newCluster(t *testing.T, n int, seed int64) (*testcluster.Cluster, []*pql.Engine) {
	t.Helper()
	peers := make([]protocol.NodeID, n)
	for i := range peers {
		peers[i] = protocol.NodeID(i)
	}
	engines := make([]protocol.Engine, n)
	pqls := make([]*pql.Engine, n)
	for i := range peers {
		pqls[i] = pql.New(pql.Config{
			Paxos: multipaxos.Config{
				ID: peers[i], Peers: peers, ElectionTicks: 10, HeartbeatTicks: 2, Seed: seed,
			},
			LeaseTicks: 40,
			RenewTicks: 10,
		})
		engines[i] = pqls[i]
	}
	return testcluster.New(seed, engines...), pqls
}

func TestLocalReadUnderLease(t *testing.T) {
	c, pqls := newCluster(t, 3, 1)
	if _, err := c.ElectLeader(100); err != nil {
		t.Fatal(err)
	}
	c.Settle(15)
	for _, e := range pqls {
		if !e.Leases().HasQuorumLease() {
			t.Fatalf("node %d: no quorum lease", e.ID())
		}
	}
	c.Replies = nil
	c.SubmitRead(1, protocol.Command{ID: 7, Client: 900, Key: "cold"})
	found := false
	for _, r := range c.Replies {
		if r.CmdID == 7 && r.Kind == protocol.ReplyRead {
			found = true
		}
	}
	if !found {
		t.Fatal("local read did not answer immediately")
	}
}

func TestWriteGatedOnHolders(t *testing.T) {
	c, _ := newCluster(t, 3, 2)
	leader, err := c.ElectLeader(100)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(15)
	var cut protocol.NodeID = protocol.None
	for id := range c.Engines {
		if id != leader.ID() {
			cut = id
			break
		}
	}
	c.Isolate(cut, true)
	c.Submit(leader.ID(), protocol.Command{ID: 10, Client: 900, Op: protocol.OpPut, Key: "k"})
	c.Tick()
	c.DeliverAll(100000)
	committed := func() bool {
		for _, e := range c.Applied[leader.ID()] {
			if e.Cmd.ID == 10 {
				return true
			}
		}
		return false
	}
	if committed() {
		t.Fatal("chosen while a lease holder had not acknowledged")
	}
	c.Settle(60) // past lease expiry: the dead holder stops blocking
	if !committed() {
		t.Fatal("never chosen after the dead holder's lease expired")
	}
	if err := c.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}

func TestAgreementUnderChaos(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		c, _ := newCluster(t, 3, 700+seed)
		leader, err := c.ElectLeader(100)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			c.Submit(leader.ID(), protocol.Command{
				ID: uint64(i + 1), Client: 900, Op: protocol.OpPut, Key: "k",
			})
			c.DeliverChaos(2000)
		}
		for r := 0; r < 30; r++ {
			c.Tick()
			c.DeliverChaos(100000)
		}
		if err := c.CheckAgreement(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
