package protocol

import (
	"bytes"
	"testing"
)

func image(index int64, term uint64, size int) SnapshotImage {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	return SnapshotImage{Index: index, Term: term, Data: data}
}

// TestSnapshotTransferRoundTrip drives a multi-chunk image through the
// sender and receiver halves, acking each chunk, and checks the
// reassembled image is byte-identical.
func TestSnapshotTransferRoundTrip(t *testing.T) {
	img := image(100, 3, 3*SnapshotChunkSize+17)
	x := &SnapshotXfer{Img: img}
	var asm SnapshotAssembly

	chunks := 0
	for {
		chunk := x.Chunk(7)
		if chunk == nil {
			t.Fatal("chunk exhausted before Done")
		}
		if len(chunk.Data) > SnapshotChunkSize {
			t.Fatalf("chunk carries %d bytes, cap is %d", len(chunk.Data), SnapshotChunkSize)
		}
		chunks++
		got, done, next := asm.Accept(chunk)
		if done {
			if !bytes.Equal(got.Data, img.Data) || got.Index != img.Index || got.Term != img.Term {
				t.Fatalf("reassembled image differs: index %d term %d len %d", got.Index, got.Term, len(got.Data))
			}
			if chunks != 4 {
				t.Fatalf("took %d chunks, want 4", chunks)
			}
			return
		}
		x.Ack(next)
	}
}

// TestSnapshotTransferEmptyImage: a zero-byte image still completes in
// one Done chunk.
func TestSnapshotTransferEmptyImage(t *testing.T) {
	x := &SnapshotXfer{Img: SnapshotImage{Index: 5, Term: 1}}
	var asm SnapshotAssembly
	chunk := x.Chunk(1)
	if chunk == nil || !chunk.Done {
		t.Fatalf("empty image chunk = %+v, want single Done chunk", chunk)
	}
	img, done, _ := asm.Accept(chunk)
	if !done || img.Index != 5 || len(img.Data) != 0 {
		t.Fatalf("empty image install = %+v done=%v", img, done)
	}
}

// TestSnapshotAssemblyDuplicateAndGap: duplicates re-sync the sender to
// the expected offset; a mid-image chunk for an unknown transfer asks for
// a restart from zero without clobbering a transfer in progress.
func TestSnapshotAssemblyDuplicateAndGap(t *testing.T) {
	img := image(50, 2, 2*SnapshotChunkSize)
	x := &SnapshotXfer{Img: img}
	var asm SnapshotAssembly

	first := x.Chunk(3)
	if _, done, next := asm.Accept(first); done || next != int64(SnapshotChunkSize) {
		t.Fatalf("first chunk: done=%v next=%d", done, next)
	}
	// Duplicate of the first chunk: no progress, expected offset reported.
	if _, done, next := asm.Accept(first); done || next != int64(SnapshotChunkSize) {
		t.Fatalf("duplicate chunk: done=%v next=%d", done, next)
	}
	// A mid-image chunk of a different snapshot at a newer term: the
	// assembly has no prefix for it and asks for offset 0.
	other := &MsgInstallSnapshot{Term: 9, Index: 80, SnapTerm: 4, Offset: 4096, Data: []byte("x")}
	if _, done, next := asm.Accept(other); done || next != 0 {
		t.Fatalf("foreign mid-image chunk: done=%v next=%d", done, next)
	}
	// The original transfer still resumes where it stopped.
	x.Ack(int64(SnapshotChunkSize))
	second := x.Chunk(3)
	got, done, _ := asm.Accept(second)
	if !done || !bytes.Equal(got.Data, img.Data) {
		t.Fatalf("transfer did not survive the foreign chunk: done=%v", done)
	}
}

// TestSnapshotAssemblyCompetingSenders: two same-term senders shipping
// different images (two MultiPaxos acceptors answering one stranded
// prepare) must not clobber each other — the newer image wins, the older
// one is ignored without an ack.
func TestSnapshotAssemblyCompetingSenders(t *testing.T) {
	lo := image(100, 2, SnapshotChunkSize*2)
	hi := image(150, 3, SnapshotChunkSize*2)
	xLo := &SnapshotXfer{Img: lo}
	xHi := &SnapshotXfer{Img: hi}
	var asm SnapshotAssembly

	if _, done, next := asm.Accept(xLo.Chunk(5)); done || next != int64(SnapshotChunkSize) {
		t.Fatalf("adopting low image: done=%v next=%d", done, next)
	}
	// The higher-index image takes over at offset 0.
	if _, done, next := asm.Accept(xHi.Chunk(5)); done || next != int64(SnapshotChunkSize) {
		t.Fatalf("takeover by high image: done=%v next=%d", done, next)
	}
	// The low sender's next chunk is ignored entirely (next < 0: no ack).
	xLo.Ack(int64(SnapshotChunkSize))
	if _, done, next := asm.Accept(xLo.Chunk(5)); done || next >= 0 {
		t.Fatalf("low image chunk not ignored: done=%v next=%d", done, next)
	}
	// Even a restart of the low transfer from zero is ignored.
	xLo.Ack(0)
	if _, done, next := asm.Accept(xLo.Chunk(5)); done || next >= 0 {
		t.Fatalf("low image restart not ignored: done=%v next=%d", done, next)
	}
	// The high transfer completes untouched.
	xHi.Ack(int64(SnapshotChunkSize))
	got, done, _ := asm.Accept(xHi.Chunk(5))
	if !done || !bytes.Equal(got.Data, hi.Data) {
		t.Fatalf("high image did not complete: done=%v", done)
	}
}

// TestSnapshotAssemblyLeaderChangeResume: a new leader at a higher term
// shipping the same image resumes exactly where the old leader stopped
// (images at one index are deterministic and identical across replicas).
func TestSnapshotAssemblyLeaderChangeResume(t *testing.T) {
	img := image(70, 2, SnapshotChunkSize*3)
	old := &SnapshotXfer{Img: img}
	var asm SnapshotAssembly
	if _, _, next := asm.Accept(old.Chunk(4)); next != int64(SnapshotChunkSize) {
		t.Fatalf("first chunk next=%d", next)
	}
	// Old leader dies; new leader at term 5 starts its own transfer of the
	// same snapshot, from offset 0: the duplicate re-syncs it to the
	// buffered offset instead of restarting.
	fresh := &SnapshotXfer{Img: img}
	if _, done, next := asm.Accept(fresh.Chunk(5)); done || next != int64(SnapshotChunkSize) {
		t.Fatalf("new leader offset-0 chunk: done=%v next=%d", done, next)
	}
	fresh.Ack(int64(SnapshotChunkSize))
	if _, _, next := asm.Accept(fresh.Chunk(5)); next != 2*int64(SnapshotChunkSize) {
		t.Fatalf("resume next=%d", next)
	}
	// And the dead leader's stale retry is now outranked (no ack).
	old.Ack(int64(SnapshotChunkSize))
	if _, done, next := asm.Accept(old.Chunk(4)); done || next >= 0 {
		t.Fatalf("stale-term chunk not ignored: done=%v next=%d", done, next)
	}
	fresh.Ack(2 * int64(SnapshotChunkSize))
	got, done, _ := asm.Accept(fresh.Chunk(5))
	if !done || !bytes.Equal(got.Data, img.Data) {
		t.Fatal("transfer did not complete after leader change")
	}
}
