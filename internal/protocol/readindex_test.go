package protocol

import (
	"errors"
	"testing"
)

func rcmd(id uint64) Command {
	return Command{ID: id, Client: 900, Op: OpGet, Key: "k"}
}

func TestReadTrackerQuorumConfirmation(t *testing.T) {
	var tr ReadTracker
	tr.Reset(2, false) // 3-replica cluster: leader + 1 echo

	var out Output
	tr.Add([]Command{rcmd(1), rcmd(2)}, 7, &out)
	if len(out.ReadStates) != 0 {
		t.Fatalf("released before confirmation: %+v", out.ReadStates)
	}
	ctx := tr.MaxCtx()
	if ctx == 0 {
		t.Fatal("no ctx assigned")
	}
	tr.MarkSent()

	// An echo of an older ctx confirms nothing.
	var o2 Output
	tr.Ack(1, ctx-1, &o2)
	if len(o2.ReadStates) != 0 {
		t.Fatalf("stale echo released the batch")
	}

	var o3 Output
	tr.Ack(1, ctx, &o3)
	if len(o3.ReadStates) != 1 {
		t.Fatalf("quorum echo did not release: %+v", o3.ReadStates)
	}
	if rs := o3.ReadStates[0]; rs.Index != 7 || len(rs.Cmds) != 2 {
		t.Fatalf("wrong read state: %+v", rs)
	}
	if tr.Pending() != 0 {
		t.Fatalf("pending after release: %d", tr.Pending())
	}
}

func TestReadTrackerJoinsOnlyUnsentBatch(t *testing.T) {
	var tr ReadTracker
	tr.Reset(2, false)

	var out Output
	tr.Add([]Command{rcmd(1)}, 3, &out)
	tr.Add([]Command{rcmd(2)}, 5, &out) // joins, raising the index
	if got := tr.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	first := tr.MaxCtx()
	tr.MarkSent()
	tr.Add([]Command{rcmd(3)}, 5, &out) // sent: must open a new ctx
	if tr.MaxCtx() == first {
		t.Fatal("read joined a batch whose ctx was already in flight")
	}

	// An echo covering both ctxs releases both, the joined batch at the
	// raised index.
	tr.MarkSent()
	var o2 Output
	tr.Ack(2, tr.MaxCtx(), &o2)
	if len(o2.ReadStates) != 2 {
		t.Fatalf("want 2 read states, got %+v", o2.ReadStates)
	}
	if o2.ReadStates[0].Index != 5 || len(o2.ReadStates[0].Cmds) != 2 {
		t.Fatalf("joined batch wrong: %+v", o2.ReadStates[0])
	}
}

func TestReadTrackerCountsDistinctFollowers(t *testing.T) {
	var tr ReadTracker
	tr.Reset(3, false) // 5-replica cluster: leader + 2 echoes

	var out Output
	tr.Add([]Command{rcmd(1)}, 1, &out)
	ctx := tr.MaxCtx()
	tr.MarkSent()

	var o2 Output
	tr.Ack(1, ctx, &o2)
	tr.Ack(1, ctx, &o2) // duplicate echo from the same follower
	if len(o2.ReadStates) != 0 {
		t.Fatal("duplicate echo counted toward quorum")
	}
	tr.Ack(2, ctx, &o2)
	if len(o2.ReadStates) != 1 {
		t.Fatal("two distinct echoes did not confirm")
	}
}

func TestReadTrackerSingleReplicaAndSabotage(t *testing.T) {
	var tr ReadTracker
	tr.Reset(1, false)
	var out Output
	tr.Add([]Command{rcmd(1)}, 4, &out)
	if len(out.ReadStates) != 1 || out.ReadStates[0].Index != 4 {
		t.Fatalf("single-replica read not immediate: %+v", out.ReadStates)
	}

	tr.Reset(2, true) // sabotaged: no confirmation round
	var o2 Output
	tr.Add([]Command{rcmd(2)}, 9, &o2)
	if len(o2.ReadStates) != 1 {
		t.Fatalf("sabotaged tracker still confirmed: %+v", o2.ReadStates)
	}
}

func TestReadTrackerFailAll(t *testing.T) {
	var tr ReadTracker
	tr.Reset(2, false)
	var out Output
	tr.Add([]Command{rcmd(1), rcmd(2)}, 1, &out)
	tr.MarkSent()

	var o2 Output
	tr.FailAll(&o2)
	if len(o2.Replies) != 2 {
		t.Fatalf("want 2 failure replies, got %+v", o2.Replies)
	}
	for _, rep := range o2.Replies {
		if rep.Kind != ReplyRead || !errors.Is(rep.Err, ErrNotLeader) {
			t.Fatalf("wrong failure reply: %+v", rep)
		}
	}
	if tr.Pending() != 0 {
		t.Fatal("batches survived FailAll")
	}
}

func TestOutputMergeCarriesReadStates(t *testing.T) {
	var a, b Output
	b.ReadStates = []ReadState{{Index: 3, Cmds: []Command{rcmd(1)}}}
	a.Merge(b)
	if len(a.ReadStates) != 1 || a.ReadStates[0].Index != 3 {
		t.Fatalf("merge dropped read states: %+v", a.ReadStates)
	}
}
