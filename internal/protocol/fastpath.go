package protocol

// The Fast Paxos write path, built once at the protocol layer and shared
// by raft, raftstar, and multipaxos the way ReadTracker and SnapshotXfer
// are: a submitter broadcasts its commands directly to every replica
// (MsgFastAccept), each replica accepts them speculatively into the next
// open slot of its own log and acks everyone (MsgFastAck — a
// BarrierMessage, so the persist-before-ack barrier covers speculative
// entries exactly like classic ones), and a command is fast-chosen the
// moment a fast quorum of ⌈3n/4⌉ replicas — the leader among them — acks
// the same command in the same slot at the same term. Conflict-free
// writes commit in one WAN round trip at the submitter instead of two
// (forward to leader + classic accept round).
//
// Collisions never need a separate arbitration protocol: the leader
// treats every incoming MsgFastAccept as a forwarded submission and runs
// its normal classic path concurrently, so the slot a colliding command
// lost is repaired by the engine's existing recovery rule (raft/raftstar:
// leader re-append at its term; multipaxos: phase-2 re-proposal at a
// classic ballot) and the command still commits — classically, within
// ~2 classic RTTs.
//
// Why ⌈3n/4⌉: any two fast quorums intersect with any classic majority in
// at least one non-faulty replica (2·⌈3n/4⌉ + ⌊n/2⌋+1 > 2n), which is
// what makes the recovery count rule in ChooseFast sound — a value
// fast-chosen at any term is the unique value that can reach the
// recovery threshold inside any vote quorum.

// FastQuorum returns ⌈3n/4⌉, the fast-path ack quorum for n replicas
// (3 of 3, 4 of 5, 6 of 7).
func FastQuorum(n int) int { return (3*n + 3) / 4 }

// FastRecoveryThreshold returns how many identical speculative reports a
// value must reach, among `participants` vote-quorum reporters out of n
// replicas, before a new leader must assume it may have been fast-chosen:
// a chosen value has ≥ FastQuorum(n) acks total, of which at most
// n-participants sit outside the quorum the leader heard from.
func FastRecoveryThreshold(participants, n int) int {
	return participants - (n - FastQuorum(n))
}

// MsgFastAccept carries a submitter's commands directly to every replica.
//
// Wire format (wire.TagFastAccept): Cmds counted — field order is frozen;
// append new fields at the end only.
type MsgFastAccept struct {
	Cmds []Command
}

// WireSize implements Message.
func (m *MsgFastAccept) WireSize() int {
	n := 8
	for i := range m.Cmds {
		n += m.Cmds[i].WireSize()
	}
	return n
}

// CmdCount implements simnet.CmdCounter.
func (m *MsgFastAccept) CmdCount() int { return len(m.Cmds) }

// MsgFastAck announces that its sender speculatively accepted the
// commands identified by IDs at the contiguous slots Base, Base+1, ...
// at Term (the sender's current term/ballot). It is broadcast to every
// replica so any of them — the submitter above all — can observe the
// fast quorum directly. Leader marks the arbiter's ack: a fast commit
// requires the leader's copy, which is what guarantees the classic path
// can never choose a different value for the slot afterwards.
//
// Wire format (wire.TagFastAck): Term, Base, IDs counted, Leader — field
// order is frozen; append new fields at the end only.
type MsgFastAck struct {
	Term   uint64
	Base   int64
	IDs    []uint64
	Leader bool
}

// WireSize implements Message.
func (m *MsgFastAck) WireSize() int { return 24 + 8*len(m.IDs) }

// CmdCount implements simnet.CmdCounter.
func (m *MsgFastAck) CmdCount() int { return len(m.IDs) }

// RequiresBarrier implements BarrierMessage: a fast ack promises the
// speculative entries it covers are durable on the sender, exactly like a
// classic append/accept ack.
func (m *MsgFastAck) RequiresBarrier() {}

// FastStats counts the fast path's outcomes on one replica.
type FastStats struct {
	// FastCommits counts commands this replica committed through a fast
	// quorum (one-RTT path).
	FastCommits int64
	// ClassicFallbacks counts commands that went through the fast path but
	// committed via the classic path (collision or quorum shortfall).
	ClassicFallbacks int64
	// Conflicts counts slot collisions observed (two commands contending
	// for the same slot).
	Conflicts int64
}

// FastStatser is implemented by engines that run the fast write path.
type FastStatser interface {
	FastStats() FastStats
}

// fastSlot accumulates acks for one slot at the tracker's current term.
type fastSlot struct {
	// acks[id] = the set of replicas that acked id at this slot.
	acks map[uint64]map[NodeID]bool
	// leaderID is the command the leader acked here (valid when leaderOK).
	leaderID uint64
	leaderOK bool
}

// FastTracker counts fast acks per (slot, command) at a single term. Every
// replica runs one (any of them can observe a fast commit); acks from an
// older term are ignored and a newer term resets the window, because a
// fast quorum is only meaningful when all its acks name the same term —
// mixed-term acks may disagree about the leader whose copy arbitrates.
type FastTracker struct {
	n          int
	fastQuorum int
	term       uint64
	slots      map[int64]*fastSlot
}

// NewFastTracker sizes the tracker for an n-replica group.
func NewFastTracker(n int) *FastTracker {
	return &FastTracker{n: n, fastQuorum: FastQuorum(n), slots: make(map[int64]*fastSlot)}
}

// Reset discards every pending ack window and re-arms the tracker at
// term (leadership or term changes invalidate in-flight fast rounds; the
// commands themselves survive via the leader's classic repair).
func (t *FastTracker) Reset(term uint64) {
	t.term = term
	t.slots = make(map[int64]*fastSlot)
}

// Term returns the term the tracker currently counts at.
func (t *FastTracker) Term() uint64 { return t.term }

// Ack records one replica's fast ack: from accepted ids[i] at slot
// base+i at term. Acks below the tracker's term are stale and dropped;
// an ack above it resets the window to the newer term first.
func (t *FastTracker) Ack(from NodeID, term uint64, base int64, ids []uint64, leader bool) {
	if term < t.term {
		return
	}
	if term > t.term {
		t.Reset(term)
	}
	for i, id := range ids {
		slot := base + int64(i)
		s := t.slots[slot]
		if s == nil {
			s = &fastSlot{acks: make(map[uint64]map[NodeID]bool)}
			t.slots[slot] = s
		}
		set := s.acks[id]
		if set == nil {
			set = make(map[NodeID]bool)
			s.acks[id] = set
		}
		set[from] = true
		if leader {
			s.leaderID, s.leaderOK = id, true
		}
	}
}

// Confirmed reports whether (slot, id) has reached a fast quorum at the
// tracker's current term with the leader's ack among them.
func (t *FastTracker) Confirmed(slot int64, id uint64) bool {
	s := t.slots[slot]
	if s == nil || !s.leaderOK || s.leaderID != id {
		return false
	}
	return len(s.acks[id]) >= t.fastQuorum
}

// Conflicted reports whether the slot has acks for more than one command
// — the collision signal the stats surface.
func (t *FastTracker) Conflicted(slot int64) bool {
	s := t.slots[slot]
	return s != nil && len(s.acks) > 1
}

// Forget drops every window at or below slot (committed: the window is
// settled and the memory reclaimable).
func (t *FastTracker) Forget(through int64) {
	for slot := range t.slots {
		if slot <= through {
			delete(t.slots, slot)
		}
	}
}

// FastReport is one vote-quorum participant's claim about a slot during
// recovery: the ballot its copy was accepted at (0 = speculative, i.e.
// fast-accepted and never ratified by a classic append) and the command.
type FastReport struct {
	Bal uint64
	Cmd Command
}

// ChooseFast picks the value a new leader must adopt for one slot from
// the reports of `participants` vote-quorum members (n = group size).
// The rule, in priority order:
//
//  1. Any ratified report (Bal > 0) wins, highest ballot first — a
//     classic accept at ballot b means the value passed the engine's own
//     phase-2, which already guarantees uniqueness per (ballot, slot).
//  2. Otherwise count identical speculative commands across ALL reports
//     regardless of the term they were accepted at: a value that reaches
//     FastRecoveryThreshold(participants, n) may have been fast-chosen
//     and must be adopted. The threshold is reachable by at most one
//     value inside any vote quorum (2·FastQuorum(n) + Quorum(n) > 2n),
//     and induction over terms — every fast quorum contains the leader
//     whose classic path ratifies what it repairs — keeps at most one
//     fast-chosen value per slot alive across terms. Filtering to the
//     newest term here would be UNSAFE: a value fast-chosen at an older
//     term can be reported by replicas that never saw the newer term's
//     speculation.
//  3. Otherwise nothing can have been chosen: adopt any report (the
//     first), preserving liveness for the command it carries.
//
// ok is false when no participant reported anything for the slot.
func ChooseFast(reports []FastReport, participants, n int) (cmd Command, ok bool) {
	if len(reports) == 0 {
		return Command{}, false
	}
	best := -1
	var bestBal uint64
	for i := range reports {
		if reports[i].Bal > 0 && (best < 0 || reports[i].Bal > bestBal) {
			best, bestBal = i, reports[i].Bal
		}
	}
	if best >= 0 {
		return reports[best].Cmd, true
	}
	counts := make(map[uint64]int, len(reports))
	for i := range reports {
		counts[reports[i].Cmd.ID]++
	}
	threshold := FastRecoveryThreshold(participants, n)
	if threshold < 1 {
		threshold = 1
	}
	for i := range reports {
		if counts[reports[i].Cmd.ID] >= threshold {
			return reports[i].Cmd, true
		}
	}
	return reports[0].Cmd, true
}
