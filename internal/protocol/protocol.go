// Package protocol defines the shared vocabulary used by every consensus
// engine in this repository: node identities, commands, log entries, quorum
// arithmetic and the pure-state-machine engine contract that lets the same
// protocol logic run under the discrete-event simulator and under live
// transports.
package protocol

import (
	"errors"
	"fmt"
)

// NodeID identifies a replica. IDs are small dense integers in [0, N).
type NodeID int

// None is the absent node (for example "voted for nobody").
const None NodeID = -1

// Op is the kind of operation a client command performs on the replicated
// state machine.
type Op uint8

// Operations understood by the replicated key-value state machine.
const (
	OpPut Op = iota + 1
	OpGet
	OpNop
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpNop:
		return "nop"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Command is a client operation to be replicated. Engines treat the payload
// as opaque; the Key is visible so lease-based protocols can track
// read/write conflicts, and Size so the simulator can model wire and CPU
// costs of large values.
//
// Wire stability: Command and Entry are embedded in every live wire
// message and in WAL records; exported field ORDER is the encoded layout
// and is frozen (see internal/wire). Append new fields at the end and
// bump the transport's wireVersion.
type Command struct {
	// ID is unique per client request; replies are matched on it.
	ID uint64
	// Client identifies the submitting client (simulator endpoint or live
	// session). It travels with the command so whichever replica commits it
	// can route the reply.
	Client NodeID
	// Op is the state-machine operation.
	Op Op
	// Key is the record the command touches.
	Key string
	// Value is the payload for puts.
	Value []byte
	// Size is the logical wire size in bytes used by cost models; when zero
	// the encoded size is used.
	Size int
}

// IsNop reports whether the command is a no-op filler (Mencius skips,
// leader no-op barriers).
func (c Command) IsNop() bool { return c.Op == OpNop || c.Op == 0 }

// WireSize returns the simulated size in bytes of the command on the wire.
func (c Command) WireSize() int {
	if c.Size > 0 {
		return c.Size
	}
	return 16 + len(c.Key) + len(c.Value)
}

// Entry is one slot of the replicated log. Raft* keeps both the Raft term
// the entry was created in and the Paxos-style ballot it was last accepted
// at; for standard Raft, Bal mirrors Term; for MultiPaxos, Term is unused.
type Entry struct {
	Index int64
	Term  uint64
	// Bal is the ballot the entry was most recently accepted at (Raft* /
	// MultiPaxos). Raft* overwrites this with the current term on every
	// append; Raft never does, which is exactly why Raft does not refine
	// MultiPaxos (Section 3 of the paper).
	Bal uint64
	Cmd Command
}

// Quorum returns the majority size for a cluster of n replicas.
func Quorum(n int) int { return n/2 + 1 }

// MaxFailures returns f, the number of tolerated failures for n replicas.
func MaxFailures(n int) int { return (n - 1) / 2 }

// Message is implemented by every protocol message. The single method is a
// marker plus a size hook for the simulator's bandwidth model.
type Message interface {
	// WireSize is the simulated encoded size in bytes.
	WireSize() int
}

// Envelope is a routed message.
type Envelope struct {
	From NodeID
	To   NodeID
	Msg  Message
}

// CommitInfo reports a newly committed (chosen) log entry in apply order.
type CommitInfo struct {
	Entry Entry
	// Reply tells the driver to answer the entry's client after applying
	// it (set by the replica responsible for the reply: the leader in
	// single-leader protocols, the slot owner in Mencius). Reads need the
	// applied value, which only the driver has.
	Reply bool
}

// ReplyKind distinguishes client replies.
type ReplyKind uint8

// Reply kinds.
const (
	ReplyWrite ReplyKind = iota + 1
	ReplyRead
	ReplyRedirect
)

// ClientReply is produced by an engine when a client request completes (or
// must be redirected to another replica).
type ClientReply struct {
	Kind  ReplyKind
	CmdID uint64
	// Client is the original submitter.
	Client NodeID
	// Key is the record the request touched; drivers use it to fill read
	// values from the local store.
	Key string
	// Value is the read result for ReplyRead.
	Value []byte
	// Redirect is the replica the client should retry against for
	// ReplyRedirect.
	Redirect NodeID
	// Err is a protocol-level rejection (not a transport failure).
	Err error
}

// Output is everything an engine wants the driver to do after one step:
// persist what the step accepted, send messages, surface commits (in
// order), and deliver client replies. Slices are owned by the caller after
// return.
//
// Durability barrier (the accept-time persistence contract): both protocol
// formulations assume an acceptor/follower makes accepted state durable
// BEFORE answering — that is what lets a quorum of acks imply a chosen
// value survives a full-cluster crash. Drivers therefore realize an Output
// strictly in this order:
//
//  1. AppendedEntries are fsynced to the log store (one group-committed
//     append for the whole batch; suffix overwrite on conflict),
//  2. hard state (term/vote/commit) is fsynced,
//  3. Msgs are released — only now can a vote grant, append/accept ack, or
//     any other promise leave the replica,
//  4. Commits are applied and Replies delivered.
//
// The order is a per-Output contract, not a whole-driver serialization: a
// pipelined driver may stage several Outputs' persistence rounds and keep
// stepping the engine while their fsyncs are in flight, as long as each
// round's steps 1–4 complete in order and rounds release in staging order
// (an Output staged later never releases a promise or reply before an
// earlier one reaches its durability point). Two refinements keep the
// contract cheap without weakening it: messages that are not
// BarrierMessages claim nothing about stable storage and may leave before
// steps 1–2 (see BarrierMessage), and step 2's fsync may be folded into
// step 1's (storage.GroupSync) since nothing observes the gap between
// them. Engines tolerate the resulting cross-iteration reorder of
// non-barrier messages; they survive arbitrary network reordering anyway.
//
// The simulator models steps 1–2 as latency on the ack edge so its figures
// stay honest about the fsync a real deployment pays.
type Output struct {
	Msgs    []Envelope
	Commits []CommitInfo
	Replies []ClientReply
	// AppendedEntries are the log entries this step accepted/appended that
	// must be durable before Msgs are released (barrier step 1). Engines
	// emit every entry they newly wrote to their in-memory log — leader
	// local appends, follower/acceptor accepts, safe-value adoptions — in
	// log order. When a step overwrites inside the existing log (conflict
	// truncation, gap fill), the emission restates the suffix through the
	// engine's last index so the driver's store, whose append semantics
	// overwrite-and-truncate, mirrors the in-memory log exactly. Slots an
	// engine grew but did not accept (MultiPaxos/Mencius holes) appear as
	// zero-valued filler entries (Bal == 0) so the persisted log stays
	// contiguous; fillers restore as "no proposal accepted".
	AppendedEntries []Entry
	// StateChanged hints that hard state (term/vote/commit) changed and
	// must be durably stored after AppendedEntries and before Msgs are
	// released (barrier step 2). Live drivers fsync on it; the simulator
	// charges it as ack-edge latency like the entry fsync.
	StateChanged bool
	// InstalledSnapshot, when non-nil, reports that the engine adopted a
	// snapshot received over the wire (MsgInstallSnapshot): its log now
	// starts at the image boundary. The driver must persist the image and
	// restore its state machine from it — strictly before persisting any
	// AppendedEntries or applying any Commits in the same output, which
	// continue above the boundary.
	InstalledSnapshot *SnapshotImage
	// ReadStates are read batches that passed the ReadIndex leadership
	// confirmation round: once the driver's state machine has applied
	// through a state's Index, serving its commands from the local store is
	// linearizable. Nothing here needs persisting — the whole point of the
	// fast read path is that it appends no log entry and pays no fsync —
	// but the driver must park each state until its applied watermark
	// (which trails the commit index by the applier's backlog) reaches
	// Index before answering.
	ReadStates []ReadState
}

// ReadState is one confirmed ReadIndex batch: Cmds may be served from the
// local state machine as soon as it has applied through Index.
type ReadState struct {
	Index int64
	Cmds  []Command
}

// Merge appends other's outputs into o. When both sides of the merge
// carry an installed snapshot (two installs folded into one driver
// iteration), the highest-index image wins: installs are monotonic, and
// letting a later-merged but lower-index image clobber a newer one would
// rewind the state machine below entries already re-anchored above it.
func (o *Output) Merge(other Output) {
	o.Msgs = append(o.Msgs, other.Msgs...)
	o.Commits = append(o.Commits, other.Commits...)
	o.Replies = append(o.Replies, other.Replies...)
	o.AppendedEntries = append(o.AppendedEntries, other.AppendedEntries...)
	o.ReadStates = append(o.ReadStates, other.ReadStates...)
	o.StateChanged = o.StateChanged || other.StateChanged
	if other.InstalledSnapshot != nil &&
		(o.InstalledSnapshot == nil || other.InstalledSnapshot.Index > o.InstalledSnapshot.Index) {
		o.InstalledSnapshot = other.InstalledSnapshot
	}
}

// IsFiller reports whether e is a contiguity filler emitted for a log slot
// the engine grew but has not accepted a value in (see
// Output.AppendedEntries). Real accepted entries always carry a non-zero
// ballot (Raft stamps Bal = Term >= 1; Paxos ballots are >= 1), so Bal == 0
// with no operation identifies a hole.
func (e Entry) IsFiller() bool { return e.Bal == 0 && e.Term == 0 && e.Cmd.Op == 0 }

// BarrierMessage marks message types whose send is a promise about the
// sender's durable state: vote grants, prepare promises, append/accept
// acknowledgements, snapshot-install acks. Drivers must hold these until
// the durability barrier completes (entries fsynced, hard state fsynced)
// — that is the whole persist-before-ack contract. Every other message
// (proposals, requests, forwards, heartbeats, snapshot chunks) claims
// nothing about stable storage and may be released concurrently with the
// fsync, which keeps the leader's disk off the replication round trip:
// followers chew on the proposal while the proposer's own write commits
// to disk. Protocols here tolerate the resulting same-iteration reorder
// (they survive arbitrary reordering, and Mencius's barrier announcements
// are max-merged, so an overtaking proposal cannot unskip anything).
type BarrierMessage interface {
	// RequiresBarrier is a marker; it is never called.
	RequiresBarrier()
}

// Engine is the contract every consensus implementation satisfies. Engines
// are pure, deterministic, single-threaded state machines: drivers serialize
// all calls. Time is logical: the driver calls Tick at a fixed cadence
// (TickInterval in the config) and engines count ticks for elections,
// heartbeats and leases.
type Engine interface {
	// ID returns this replica's identity.
	ID() NodeID
	// Tick advances logical time by one tick.
	Tick() Output
	// Step processes one inbound message.
	Step(from NodeID, msg Message) Output
	// Submit proposes a write command at this replica.
	Submit(cmd Command) Output
	// SubmitRead requests a strongly consistent read of key at this replica.
	SubmitRead(cmd Command) Output
	// Leader returns the replica currently believed to be leader, or None.
	Leader() NodeID
	// IsLeader reports whether this replica believes it is the leader.
	IsLeader() bool
}

// StateMachine is the replicated application the driver feeds committed
// entries to. Snapshot and Restore bound recovery: a driver may serialize
// the full applied state, persist it, and later rebuild the machine from
// that image plus only the log tail above it, instead of replaying all
// history.
type StateMachine interface {
	// Apply executes one committed entry; entries arrive in index order.
	Apply(e Entry)
	// Snapshot serializes the entire applied state deterministically.
	Snapshot() ([]byte, error)
	// Restore replaces the applied state with a Snapshot image.
	Restore(data []byte) error
}

// PrefixTruncator is an optional Engine extension: engines whose in-memory
// log supports dropping the compacted prefix (everything at or below a
// persisted snapshot) expose it so drivers can bound replica memory.
type PrefixTruncator interface {
	// TruncatePrefix drops in-memory log state for indexes <= through.
	// Only committed indexes may be truncated; engines clamp internally.
	TruncatePrefix(through int64)
}

// SnapshotRestorer is an optional Engine extension: the driver calls it
// before RestoreLog when recovery starts from a snapshot, so the engine
// can begin its log at the snapshot boundary instead of index 1.
type SnapshotRestorer interface {
	// RestoreSnapshot primes the engine with the snapshot's last included
	// index and term; the subsequent RestoreLog carries only the tail.
	RestoreSnapshot(index int64, term uint64)
}

// BatchSubmitter is an optional Engine extension for engines whose wire
// protocol already carries multi-entry accepts/appends (MultiPaxos,
// Raft, Raft*): a whole batch of commands becomes one log extension and
// one broadcast instead of one per command. Drivers discover it with a
// type assertion; SubmitAll provides the loop-over-Submit fallback for
// engines that lack it.
type BatchSubmitter interface {
	// SubmitBatch proposes every command in cmds at this replica, in
	// order, as a single protocol step.
	SubmitBatch(cmds []Command) Output
}

// SubmitAll proposes cmds through the engine's native batch path when it
// has one, and otherwise submits them one at a time, merging the outputs.
func SubmitAll(e Engine, cmds []Command) Output {
	switch len(cmds) {
	case 0:
		return Output{}
	case 1:
		return e.Submit(cmds[0])
	}
	if b, ok := e.(BatchSubmitter); ok {
		return b.SubmitBatch(cmds)
	}
	var out Output
	for _, c := range cmds {
		out.Merge(e.Submit(c))
	}
	return out
}

// ReadBatchSubmitter is an optional Engine extension for engines with a
// ReadIndex fast path: a whole batch of reads shares one read index and
// one leadership-confirmation round instead of one per read.
type ReadBatchSubmitter interface {
	// SubmitReadBatch requests a strongly consistent read for every
	// command in cmds at this replica, as a single protocol step.
	SubmitReadBatch(cmds []Command) Output
}

// SubmitReads requests cmds through the engine's native read-batch path
// when it has one, and otherwise one at a time, merging the outputs.
func SubmitReads(e Engine, cmds []Command) Output {
	switch len(cmds) {
	case 0:
		return Output{}
	case 1:
		return e.SubmitRead(cmds[0])
	}
	if b, ok := e.(ReadBatchSubmitter); ok {
		return b.SubmitReadBatch(cmds)
	}
	var out Output
	for _, c := range cmds {
		out.Merge(e.SubmitRead(c))
	}
	return out
}

// MsgReadForward carries read commands from a follower to the leader,
// which serves them through its ReadIndex fast path and routes the
// replies back to the origin's clients. Shared by every engine with a
// ReadIndex port, like the snapshot-transfer messages.
//
// Wire stability: travels the live wire through internal/wire; exported
// field ORDER is the encoded layout and is frozen.
type MsgReadForward struct {
	Cmds []Command
}

// WireSize implements Message.
func (m *MsgReadForward) WireSize() int {
	n := 8
	for i := range m.Cmds {
		n += m.Cmds[i].WireSize()
	}
	return n
}

// CmdCount implements simnet.CmdCounter.
func (m *MsgReadForward) CmdCount() int { return len(m.Cmds) }

// ErrNotLeader is returned in ClientReply.Err when a write was submitted to
// a replica that cannot serve it and cannot forward it.
var ErrNotLeader = errors.New("not leader")

// ErrDropped is returned when an engine sheds a request (for example a
// pending proposal abandoned after losing leadership).
var ErrDropped = errors.New("request dropped")
