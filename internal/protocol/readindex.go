package protocol

// ReadTracker is the leader half of the ReadIndex read path, built once
// here and shared by the raft, raftstar, and multipaxos engines the same
// way the snapshot-transfer machinery is (the paper's porting direction:
// one optimization, expressed at the protocol layer, inherited by the
// family).
//
// The protocol: when a read arrives at the leader it captures the current
// commit index (clamped up to the leader's election barrier) as the
// read's index and opens a confirmation batch identified by a
// monotonically increasing context (ctx). The ctx is piggybacked on the
// next append/accept broadcast and echoed back in the acks; an ack
// echoing ctx c proves the follower still recognized this leader's
// term/ballot when it processed a message sent AFTER every batch with
// ctx <= c was opened — which is exactly what rules out a newer leader
// having committed writes this leader has not seen before the read was
// invoked. Once a quorum (the leader included) has echoed a batch's ctx,
// the batch is released as an Output.ReadState; the driver serves it from
// the state machine as soon as its applied watermark reaches the read
// index. No log append, no fsync.
//
// Joining an open batch is only legal before any message carrying its ctx
// has left the replica: an echo of a ctx that was already in flight when
// the read arrived would prove leadership only up to a point BEFORE the
// read's invocation, and a leader deposed in between could then serve a
// stale value. MarkSent closes the open batch; later reads open a new ctx.
type ReadTracker struct {
	// quorum is the confirmation threshold, counting the leader itself.
	quorum int
	// unsafeNoQuorum releases reads immediately, without the confirmation
	// round. Testing only: it exists so the linearizability checker's
	// sabotage regression can demonstrate the checker catches the stale
	// reads a deposed leader then serves.
	unsafeNoQuorum bool

	nextCtx uint64
	batches []*readBatch
}

type readBatch struct {
	ctx   uint64
	index int64
	cmds  []Command
	acks  map[NodeID]bool
	sent  bool
}

// Reset arms the tracker for a new leadership: quorum is the confirmation
// threshold including the leader itself; unsafeNoQuorum skips the
// confirmation round entirely (testing only). Any stale batches are
// dropped silently — callers fail pending reads on the way OUT of
// leadership (FailAll), so a fresh leader starts empty.
func (t *ReadTracker) Reset(quorum int, unsafeNoQuorum bool) {
	t.quorum = quorum
	t.unsafeNoQuorum = unsafeNoQuorum
	t.batches = nil
}

// Add opens (or joins) a confirmation batch for cmds at read index. When
// no confirmation round is needed — a single-replica cluster, or the
// sabotaged test mode — the ReadState is released into out immediately.
func (t *ReadTracker) Add(cmds []Command, index int64, out *Output) {
	if len(cmds) == 0 {
		return
	}
	cmds = append([]Command(nil), cmds...)
	if t.quorum <= 1 || t.unsafeNoQuorum {
		out.ReadStates = append(out.ReadStates, ReadState{Index: index, Cmds: cmds})
		return
	}
	if n := len(t.batches); n > 0 && !t.batches[n-1].sent {
		// The open batch's ctx has not been broadcast yet, so its eventual
		// echoes postdate this read too; raising the index to the current
		// commit only makes the earlier reads in the batch fresher.
		b := t.batches[n-1]
		if index > b.index {
			b.index = index
		}
		b.cmds = append(b.cmds, cmds...)
		return
	}
	t.nextCtx++
	t.batches = append(t.batches, &readBatch{
		ctx:   t.nextCtx,
		index: index,
		cmds:  cmds,
		acks:  make(map[NodeID]bool),
	})
}

// Pending reports how many unconfirmed read commands the tracker holds.
func (t *ReadTracker) Pending() int {
	n := 0
	for _, b := range t.batches {
		n += len(b.cmds)
	}
	return n
}

// MaxCtx returns the context to piggyback on outgoing appends/accepts (0
// when no batch awaits confirmation). Followers echo the value; an echo
// confirms every batch at or below it.
func (t *ReadTracker) MaxCtx() uint64 {
	if len(t.batches) == 0 {
		return 0
	}
	return t.batches[len(t.batches)-1].ctx
}

// MarkSent records that a message carrying MaxCtx left the replica: every
// open batch is now closed to joiners (see the type comment for why).
func (t *ReadTracker) MarkSent() {
	for _, b := range t.batches {
		b.sent = true
	}
}

// Ack records a follower's echo of ctx, confirming every batch at or
// below it; batches reaching quorum (the leader's implicit
// self-acknowledgement included) release their ReadState into out.
func (t *ReadTracker) Ack(from NodeID, ctx uint64, out *Output) {
	kept := t.batches[:0]
	for _, b := range t.batches {
		if b.ctx <= ctx {
			b.acks[from] = true
		}
		if len(b.acks)+1 >= t.quorum {
			out.ReadStates = append(out.ReadStates, ReadState{Index: b.index, Cmds: b.cmds})
			continue
		}
		kept = append(kept, b)
	}
	t.batches = kept
}

// maxPendingReads bounds the reads an engine buffers while no leader is
// known; overflow rejects with ErrNotLeader, like the write-side cap.
const maxPendingReads = 4096

// RouteReads is the non-leader half of SubmitReadBatch, shared by every
// engine with a ReadIndex port: forward the batch to a known leader, or
// buffer it (bounded) until one is discovered and flushPending re-routes.
// A leader view still pointing at self (a deposed leader that has only
// seen a higher term, not the new leader) counts as unknown — forwarding
// to self would loop the batch through the transport forever.
func RouteReads(self, leader NodeID, pending *[]Command, cmds []Command, out *Output) {
	if leader != None && leader != self {
		out.Msgs = append(out.Msgs, Envelope{
			From: self, To: leader,
			Msg: &MsgReadForward{Cmds: append([]Command(nil), cmds...)},
		})
		return
	}
	for _, cmd := range cmds {
		if len(*pending) < maxPendingReads {
			*pending = append(*pending, cmd)
			continue
		}
		out.Replies = append(out.Replies, ClientReply{
			Kind: ReplyRead, CmdID: cmd.ID, Client: cmd.Client, Key: cmd.Key,
			Err: ErrNotLeader,
		})
	}
}

// FailAll rejects every pending read with ErrNotLeader — called when the
// replica loses (or abdicates) leadership, so parked reads fail fast and
// clients retry against the new leader instead of hanging.
func (t *ReadTracker) FailAll(out *Output) {
	for _, b := range t.batches {
		for _, cmd := range b.cmds {
			out.Replies = append(out.Replies, ClientReply{
				Kind: ReplyRead, CmdID: cmd.ID, Client: cmd.Client, Key: cmd.Key,
				Err: ErrNotLeader,
			})
		}
	}
	t.batches = nil
}
