package protocol_test

import (
	"testing"
	"testing/quick"

	"raftpaxos/internal/protocol"
)

func TestQuorumMath(t *testing.T) {
	cases := []struct{ n, quorum, f int }{
		{1, 1, 0}, {2, 2, 0}, {3, 2, 1}, {4, 3, 1}, {5, 3, 2}, {7, 4, 3},
	}
	for _, tc := range cases {
		if got := protocol.Quorum(tc.n); got != tc.quorum {
			t.Errorf("Quorum(%d) = %d, want %d", tc.n, got, tc.quorum)
		}
		if got := protocol.MaxFailures(tc.n); got != tc.f {
			t.Errorf("MaxFailures(%d) = %d, want %d", tc.n, got, tc.f)
		}
	}
}

// Two quorums of the same cluster always intersect — the property every
// protocol in this repository rests on.
func TestQuorumsIntersect(t *testing.T) {
	if err := quick.Check(func(n uint8) bool {
		size := int(n%20) + 1
		q := protocol.Quorum(size)
		return 2*q > size
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommandWireSize(t *testing.T) {
	c := protocol.Command{Key: "abc", Value: make([]byte, 10)}
	if got := c.WireSize(); got != 16+3+10 {
		t.Fatalf("wire size = %d", got)
	}
	c.Size = 4096
	if got := c.WireSize(); got != 4096 {
		t.Fatalf("explicit size ignored: %d", got)
	}
}

func TestIsNop(t *testing.T) {
	if !(protocol.Command{Op: protocol.OpNop}).IsNop() {
		t.Fatal("nop not detected")
	}
	if !(protocol.Command{}).IsNop() {
		t.Fatal("zero command should be nop")
	}
	if (protocol.Command{Op: protocol.OpPut}).IsNop() {
		t.Fatal("put misdetected as nop")
	}
}

func TestOutputMerge(t *testing.T) {
	var a protocol.Output
	b := protocol.Output{
		Msgs:         []protocol.Envelope{{From: 1, To: 2}},
		Commits:      []protocol.CommitInfo{{}},
		Replies:      []protocol.ClientReply{{CmdID: 9}},
		StateChanged: true,
	}
	a.Merge(b)
	if len(a.Msgs) != 1 || len(a.Commits) != 1 || len(a.Replies) != 1 || !a.StateChanged {
		t.Fatalf("merge lost data: %+v", a)
	}
}

func TestOpString(t *testing.T) {
	if protocol.OpPut.String() != "put" || protocol.OpGet.String() != "get" ||
		protocol.OpNop.String() != "nop" {
		t.Fatal("op names wrong")
	}
}
