package protocol_test

import (
	"testing"
	"testing/quick"

	"raftpaxos/internal/protocol"
)

func TestQuorumMath(t *testing.T) {
	cases := []struct{ n, quorum, f int }{
		{1, 1, 0}, {2, 2, 0}, {3, 2, 1}, {4, 3, 1}, {5, 3, 2}, {7, 4, 3},
	}
	for _, tc := range cases {
		if got := protocol.Quorum(tc.n); got != tc.quorum {
			t.Errorf("Quorum(%d) = %d, want %d", tc.n, got, tc.quorum)
		}
		if got := protocol.MaxFailures(tc.n); got != tc.f {
			t.Errorf("MaxFailures(%d) = %d, want %d", tc.n, got, tc.f)
		}
	}
}

// Two quorums of the same cluster always intersect — the property every
// protocol in this repository rests on.
func TestQuorumsIntersect(t *testing.T) {
	if err := quick.Check(func(n uint8) bool {
		size := int(n%20) + 1
		q := protocol.Quorum(size)
		return 2*q > size
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommandWireSize(t *testing.T) {
	c := protocol.Command{Key: "abc", Value: make([]byte, 10)}
	if got := c.WireSize(); got != 16+3+10 {
		t.Fatalf("wire size = %d", got)
	}
	c.Size = 4096
	if got := c.WireSize(); got != 4096 {
		t.Fatalf("explicit size ignored: %d", got)
	}
}

func TestIsNop(t *testing.T) {
	if !(protocol.Command{Op: protocol.OpNop}).IsNop() {
		t.Fatal("nop not detected")
	}
	if !(protocol.Command{}).IsNop() {
		t.Fatal("zero command should be nop")
	}
	if (protocol.Command{Op: protocol.OpPut}).IsNop() {
		t.Fatal("put misdetected as nop")
	}
}

func TestOutputMerge(t *testing.T) {
	var a protocol.Output
	b := protocol.Output{
		Msgs:            []protocol.Envelope{{From: 1, To: 2}},
		Commits:         []protocol.CommitInfo{{}},
		Replies:         []protocol.ClientReply{{CmdID: 9}},
		AppendedEntries: []protocol.Entry{{Index: 4, Term: 2, Bal: 2}},
		StateChanged:    true,
	}
	a.Merge(b)
	if len(a.Msgs) != 1 || len(a.Commits) != 1 || len(a.Replies) != 1 || !a.StateChanged {
		t.Fatalf("merge lost data: %+v", a)
	}
	if len(a.AppendedEntries) != 1 || a.AppendedEntries[0].Index != 4 {
		t.Fatalf("merge lost appended entries: %+v", a.AppendedEntries)
	}
}

// TestOutputMergeKeepsNewestSnapshot pins the install-merge rule: when two
// snapshot installs fold into one driver iteration, the highest-index
// image must win regardless of merge order — a later-merged older image
// must not rewind the adopted boundary.
func TestOutputMergeKeepsNewestSnapshot(t *testing.T) {
	newer := &protocol.SnapshotImage{Index: 20, Term: 3}
	older := &protocol.SnapshotImage{Index: 10, Term: 2}

	var a protocol.Output
	a.Merge(protocol.Output{InstalledSnapshot: newer})
	a.Merge(protocol.Output{InstalledSnapshot: older})
	if a.InstalledSnapshot == nil || a.InstalledSnapshot.Index != 20 {
		t.Fatalf("older install clobbered newer: %+v", a.InstalledSnapshot)
	}

	var b protocol.Output
	b.Merge(protocol.Output{InstalledSnapshot: older})
	b.Merge(protocol.Output{InstalledSnapshot: newer})
	if b.InstalledSnapshot == nil || b.InstalledSnapshot.Index != 20 {
		t.Fatalf("newer install not adopted: %+v", b.InstalledSnapshot)
	}
}

func TestEntryIsFiller(t *testing.T) {
	if !(protocol.Entry{Index: 7}).IsFiller() {
		t.Fatal("zero-valued slot not detected as filler")
	}
	for _, real := range []protocol.Entry{
		{Index: 7, Term: 1, Bal: 1, Cmd: protocol.Command{Op: protocol.OpPut}},
		{Index: 7, Cmd: protocol.Command{Op: protocol.OpPut}},                  // Mencius default-leader proposal, ballot 0
		{Index: 7, Term: 2, Bal: 2, Cmd: protocol.Command{Op: protocol.OpNop}}, // revocation no-op
	} {
		if real.IsFiller() {
			t.Fatalf("real entry misdetected as filler: %+v", real)
		}
	}
}

func TestOpString(t *testing.T) {
	if protocol.OpPut.String() != "put" || protocol.OpGet.String() != "get" ||
		protocol.OpNop.String() != "nop" {
		t.Fatal("op names wrong")
	}
}
