package protocol

import "testing"

func TestFastQuorumSizes(t *testing.T) {
	cases := []struct{ n, fq int }{{3, 3}, {4, 3}, {5, 4}, {6, 5}, {7, 6}, {9, 7}}
	for _, tc := range cases {
		if got := FastQuorum(tc.n); got != tc.fq {
			t.Errorf("FastQuorum(%d) = %d, want %d", tc.n, got, tc.fq)
		}
		// Soundness: two fast quorums and one classic quorum always share
		// a replica (2·fq + q > 2n), for every cluster size the repo runs.
		if 2*FastQuorum(tc.n)+Quorum(tc.n) <= 2*tc.n {
			t.Errorf("n=%d: fast quorum %d too small for recovery soundness", tc.n, FastQuorum(tc.n))
		}
	}
}

func TestFastTrackerConfirm(t *testing.T) {
	tr := NewFastTracker(5) // fast quorum 4
	tr.Reset(3)
	tr.Ack(0, 3, 10, []uint64{77}, false)
	tr.Ack(1, 3, 10, []uint64{77}, false)
	tr.Ack(2, 3, 10, []uint64{77}, false)
	if tr.Confirmed(10, 77) {
		t.Fatal("confirmed with 3 of 4 acks and no leader ack")
	}
	tr.Ack(4, 3, 10, []uint64{77}, true) // leader's ack completes the quorum
	if !tr.Confirmed(10, 77) {
		t.Fatal("not confirmed with 4 acks including the leader")
	}
	if tr.Confirmed(10, 78) || tr.Confirmed(11, 77) {
		t.Fatal("confirmed a (slot, cmd) nobody acked")
	}
	// Duplicate acks from one replica must not double count.
	tr2 := NewFastTracker(5)
	tr2.Reset(3)
	for i := 0; i < 10; i++ {
		tr2.Ack(0, 3, 4, []uint64{9}, true)
	}
	if tr2.Confirmed(4, 9) {
		t.Fatal("one replica acking repeatedly reached the quorum")
	}
}

func TestFastTrackerLeaderArbitration(t *testing.T) {
	tr := NewFastTracker(3) // fast quorum 3: everyone
	tr.Reset(2)
	tr.Ack(0, 2, 5, []uint64{1}, false)
	tr.Ack(1, 2, 5, []uint64{1}, false)
	tr.Ack(2, 2, 5, []uint64{2}, true) // the leader acked a DIFFERENT cmd
	if tr.Confirmed(5, 1) {
		t.Fatal("confirmed against the leader's arbitration")
	}
	if !tr.Conflicted(5) {
		t.Fatal("collision not reported")
	}
}

func TestFastTrackerTermWindows(t *testing.T) {
	tr := NewFastTracker(3)
	tr.Reset(2)
	tr.Ack(0, 2, 1, []uint64{5}, true)
	tr.Ack(1, 2, 1, []uint64{5}, false)
	tr.Ack(2, 1, 1, []uint64{5}, false) // stale term: ignored
	if tr.Confirmed(1, 5) {
		t.Fatal("stale-term ack counted toward the quorum")
	}
	tr.Ack(2, 3, 1, []uint64{5}, false) // newer term resets the window
	if tr.Term() != 3 {
		t.Fatalf("term = %d after newer ack, want 3", tr.Term())
	}
	if tr.Confirmed(1, 5) {
		t.Fatal("acks from term 2 survived the reset to term 3")
	}
	tr.Ack(0, 3, 1, []uint64{5}, true)
	tr.Ack(1, 3, 1, []uint64{5}, false)
	if !tr.Confirmed(1, 5) {
		t.Fatal("fresh full quorum at term 3 not confirmed")
	}
	tr.Forget(1)
	if tr.Confirmed(1, 5) {
		t.Fatal("forgotten slot still confirmed")
	}
}

func TestFastTrackerBatchBase(t *testing.T) {
	tr := NewFastTracker(3)
	tr.Reset(1)
	for _, from := range []NodeID{0, 1, 2} {
		tr.Ack(from, 1, 7, []uint64{11, 12, 13}, from == 0)
	}
	for i, id := range []uint64{11, 12, 13} {
		if !tr.Confirmed(7+int64(i), id) {
			t.Fatalf("batched ack at slot %d not confirmed", 7+int64(i))
		}
	}
}

func TestChooseFastRatifiedWins(t *testing.T) {
	cmdA, cmdB := Command{ID: 1}, Command{ID: 2}
	// A ratified copy beats any number of speculative reports, and the
	// highest ballot wins among ratified ones.
	got, ok := ChooseFast([]FastReport{
		{Bal: 0, Cmd: cmdB}, {Bal: 3, Cmd: cmdA}, {Bal: 0, Cmd: cmdB}, {Bal: 5, Cmd: cmdB},
	}, 4, 5)
	if !ok || got.ID != cmdB.ID {
		t.Fatalf("adopted %d, want highest-ballot ratified %d", got.ID, cmdB.ID)
	}
}

func TestChooseFastCountRule(t *testing.T) {
	cmdA, cmdB := Command{ID: 1}, Command{ID: 2}
	// n=5, participants=3: threshold = 3 - (5-4) = 2. Two identical
	// speculative reports may have been fast-chosen; adopt them.
	got, ok := ChooseFast([]FastReport{
		{Cmd: cmdA}, {Cmd: cmdB}, {Cmd: cmdA},
	}, 3, 5)
	if !ok || got.ID != cmdA.ID {
		t.Fatalf("adopted %d, want possibly-chosen %d", got.ID, cmdA.ID)
	}
	// Below threshold everywhere: nothing was chosen, any pick is safe —
	// the rule must still return a value for liveness.
	if _, ok := ChooseFast([]FastReport{{Cmd: cmdB}}, 3, 5); !ok {
		t.Fatal("singleton report yielded nothing")
	}
	if _, ok := ChooseFast(nil, 3, 5); ok {
		t.Fatal("empty report set yielded a value")
	}
}

func TestChooseFastThresholdUnique(t *testing.T) {
	// The threshold must be unreachable by two values at once for every
	// (participants, n) a vote quorum can produce.
	for n := 3; n <= 9; n++ {
		q := Quorum(n)
		for p := q; p <= n; p++ {
			thr := FastRecoveryThreshold(p, n)
			if 2*thr <= p {
				t.Errorf("n=%d participants=%d: threshold %d reachable twice", n, p, thr)
			}
		}
	}
}
