package protocol

// Wire-level snapshot transfer (InstallSnapshot), built once here and
// shared by every engine that can strand a peer behind its compaction
// base. The paper's thesis is that optimizations port across the
// Paxos/Raft family through the shared refinement; the same holds for the
// catch-up machinery that complements log compaction: Raft and Raft*
// leaders ship the image when next[peer] falls below the held tail, and
// MultiPaxos does the equivalent for acceptors (and preparers) behind a
// peer's compaction base — all over the one message pair defined here.
//
// Transfers are chunked: a multi-megabyte state-machine image must not
// ride the single per-peer FIFO stream as one frame, or every heartbeat
// behind it would be head-of-line blocked for the whole encode/transmit.
// The sender keeps one chunk in flight and advances on each ack
// (MsgInstallSnapshotResp.NextOffset), so heartbeats interleave freely
// and a lost chunk costs one retry round, not the transfer.

// SnapshotChunkSize caps the payload of one MsgInstallSnapshot frame.
// Heartbeats queued behind a chunk on the same per-peer stream wait for
// at most this many bytes.
const SnapshotChunkSize = 64 << 10

// SnapshotImage is a serialized state-machine image plus the log position
// it covers: every entry at or below Index (whose entry had Term) is
// reflected in Data.
type SnapshotImage struct {
	Index int64
	Term  uint64
	Data  []byte
}

// SnapshotProvider hands an engine the newest durable snapshot image so
// it can ship it to a stranded peer. Live drivers adapt their snapshot
// store; tests supply fixtures.
type SnapshotProvider interface {
	// LatestSnapshotImage returns the newest durable image, if any.
	LatestSnapshotImage() (SnapshotImage, bool)
}

// SnapshotProviderFunc adapts a function to SnapshotProvider.
type SnapshotProviderFunc func() (SnapshotImage, bool)

// LatestSnapshotImage implements SnapshotProvider.
func (f SnapshotProviderFunc) LatestSnapshotImage() (SnapshotImage, bool) { return f() }

// SnapshotSender is an optional Engine extension: engines that can ship
// snapshots accept the provider from their driver before the first step.
type SnapshotSender interface {
	SetSnapshotProvider(p SnapshotProvider)
}

// SnapshotInstaller is the driver-side half of the transfer contract: a
// node that can persist a received image and restore its state machine
// from it. Engines never call it directly — they adopt the image into
// their own log state during Step and surface it via
// Output.InstalledSnapshot; the driver installs it in apply order,
// reusing the same snapshot-restore path it uses at restart.
type SnapshotInstaller interface {
	InstallSnapshot(img SnapshotImage) error
}

// Wire stability: the transfer messages travel the live wire through internal/wire;
// exported field ORDER is the encoded layout and is frozen. Append new
// fields at the end and bump the transport's wireVersion.
//
// MsgInstallSnapshot carries one chunk of a snapshot image to a peer that
// cannot be caught up by log replay (its next needed index fell below the
// sender's compaction base).
type MsgInstallSnapshot struct {
	// Term is the sender's term (ballot); stale transfers are rejected
	// exactly like stale appends.
	Term uint64
	// Index/SnapTerm identify the snapshot: its last included entry.
	Index    int64
	SnapTerm uint64
	// Offset is the byte position of Data within the image; chunks arrive
	// in offset order on the per-pair FIFO stream.
	Offset int64
	Data   []byte
	// Done marks the final chunk.
	Done bool
}

// WireSize implements Message.
func (m *MsgInstallSnapshot) WireSize() int { return 40 + len(m.Data) }

// MsgInstallSnapshotResp acks one chunk (NextOffset paces the sender) or
// reports the whole image installed, at which point replication resumes
// from Index+1.
type MsgInstallSnapshotResp struct {
	Term  uint64
	Index int64
	// NextOffset is the byte the receiver expects next; a duplicate or
	// gapped chunk re-synchronizes the sender here.
	NextOffset int64
	// Installed reports the image was adopted (or was already covered by
	// the receiver's commit): the sender may resume appends above Index.
	Installed bool
}

// WireSize implements Message.
func (m *MsgInstallSnapshotResp) WireSize() int { return 32 }

// RequiresBarrier implements BarrierMessage: chunk acks pace a transfer
// the receiver must be able to resume, and the final Installed ack
// promises the image is durably adopted.
func (m *MsgInstallSnapshotResp) RequiresBarrier() {}

// SnapshotXfer is the sender side of one in-flight transfer: one chunk
// outstanding, advanced by acks. Engines keep one per stranded peer.
type SnapshotXfer struct {
	Img    SnapshotImage
	Offset int64
	// idle damps retries: a stalled transfer re-sends its current chunk
	// only after two consecutive retry triggers with no ack between them,
	// so the regular heartbeat-cadence probe does not duplicate chunks
	// that are merely still in flight.
	idle bool
}

// Chunk builds the frame at the current offset (nil when the image is
// exhausted, which only happens after the final ack).
func (x *SnapshotXfer) Chunk(term uint64) *MsgInstallSnapshot {
	total := int64(len(x.Img.Data))
	if x.Offset > total || (x.Offset == total && total > 0) {
		return nil
	}
	end := x.Offset + SnapshotChunkSize
	if end > total {
		end = total
	}
	x.idle = false
	return &MsgInstallSnapshot{
		Term:     term,
		Index:    x.Img.Index,
		SnapTerm: x.Img.Term,
		Offset:   x.Offset,
		Data:     x.Img.Data[x.Offset:end],
		Done:     end == total,
	}
}

// Ack adopts the receiver's expected offset; the caller then sends
// Chunk() from there.
func (x *SnapshotXfer) Ack(next int64) {
	if next < 0 {
		next = 0
	}
	x.Offset = next
	x.idle = false
}

// Retry reports whether a stalled transfer should re-send its current
// chunk now: the first trigger after an ack only arms the retry, the
// second (nothing heard for a whole retry interval) fires it.
func (x *SnapshotXfer) Retry() bool {
	if x.idle {
		return true
	}
	x.idle = true
	return false
}

// SnapshotAssembly is the receiver side: it accumulates chunks arriving
// in offset order and yields the complete image. A chunk from a different
// snapshot (new leader, newer snapshot) restarts assembly from offset 0 —
// unless it is the same image, in which case a new sender may resume
// exactly where the old one stopped, since images at one index are
// deterministic and identical across replicas.
type SnapshotAssembly struct {
	index      int64
	term       uint64
	senderTerm uint64
	buf        []byte
	started    bool
}

// Accept ingests one chunk. It returns the completed image (valid only
// when done is true) and the byte offset the assembly expects next, which
// the receiver acks so the sender re-synchronizes after loss, duplication
// or a mid-transfer leader change. next < 0 means the chunk belongs to a
// transfer the assembly is deliberately ignoring (an older image, or an
// older sender, while a better transfer is in progress): send no ack at
// all, so the competing senders cannot clobber each other's progress —
// the loser's damped retries resolve via the already-covered path once
// the winning image installs.
func (a *SnapshotAssembly) Accept(m *MsgInstallSnapshot) (img SnapshotImage, done bool, next int64) {
	switch {
	case a.started && a.index == m.Index && a.term == m.SnapTerm:
		if m.Term < a.senderTerm {
			return SnapshotImage{}, false, -1 // stale sender of the same image
		}
		// Same image, possibly resumed by a newer sender after a leader
		// change: images at one index are deterministic and identical
		// across replicas, so the new sender continues where the old one
		// stopped.
		a.senderTerm = m.Term
	case a.started && m.Term < a.senderTerm:
		return SnapshotImage{}, false, -1 // stale sender shipping an old image
	case a.started && m.Term == a.senderTerm && m.Index < a.index:
		// A competing transfer of an older image at the same term (two
		// MultiPaxos acceptors answering one stranded prepare): keep the
		// newer image in flight.
		return SnapshotImage{}, false, -1
	default:
		if m.Offset != 0 {
			// Mid-image chunk of a transfer we hold no prefix for: ask the
			// sender to restart from the beginning. Any current assembly
			// is kept — adoption happens only on an offset-0 chunk.
			return SnapshotImage{}, false, 0
		}
		a.index, a.term, a.senderTerm, a.buf, a.started = m.Index, m.SnapTerm, m.Term, nil, true
	}
	if m.Offset != int64(len(a.buf)) {
		// Duplicate or gapped chunk: report where we actually are.
		return SnapshotImage{}, false, int64(len(a.buf))
	}
	a.buf = append(a.buf, m.Data...)
	if !m.Done {
		return SnapshotImage{}, false, int64(len(a.buf))
	}
	img = SnapshotImage{Index: a.index, Term: a.term, Data: a.buf}
	next = int64(len(a.buf))
	a.reset()
	return img, true, next
}

// InProgress reports whether a partial image is buffered (used by tests
// asserting a crash mid-install drops the torn image).
func (a *SnapshotAssembly) InProgress() bool { return a.started }

// Reset discards any partial image (the receiver turned out not to need
// the transfer after all).
func (a *SnapshotAssembly) Reset() { a.reset() }

func (a *SnapshotAssembly) reset() {
	a.index, a.term, a.senderTerm, a.buf, a.started = 0, 0, 0, nil, false
}
