package protocol

// Log is a base-offset in-memory log: a contiguous run of entries whose
// compacted prefix has been dropped while every index stays in global
// log-index space. Engines embed it so their memory footprint tracks the
// uncompacted tail (everything above the latest snapshot) instead of all
// history, and so index arithmetic lives in exactly one place.
//
// Invariants: the entry at global index i (FirstIndex() <= i <=
// LastIndex()) is ents[i-base-1]; entries below or at base are gone and
// summarized by baseTerm, the term of the entry at index base (the
// snapshot's last included term).
type Log struct {
	base     int64
	baseTerm uint64
	ents     []Entry
}

// Base returns the compacted-prefix watermark: every entry at or below it
// has been dropped.
func (l *Log) Base() int64 { return l.base }

// FirstIndex returns the lowest index still held (base+1). On an empty,
// never-compacted log it is 1 even though no entry exists yet.
func (l *Log) FirstIndex() int64 { return l.base + 1 }

// LastIndex returns the highest index held (base when the tail is empty,
// 0 for an empty never-compacted log).
func (l *Log) LastIndex() int64 { return l.base + int64(len(l.ents)) }

// Len returns the number of entries held in memory (the uncompacted tail).
func (l *Log) Len() int { return len(l.ents) }

// At returns the entry at global index i, false when i is outside
// [FirstIndex, LastIndex] (compacted or not yet appended).
func (l *Log) At(i int64) (Entry, bool) {
	if i <= l.base || i > l.LastIndex() {
		return Entry{}, false
	}
	return l.ents[i-l.base-1], true
}

// TermAt returns the term of the entry at global index i. For i == base it
// answers from the compaction summary (baseTerm); outside the known range
// it returns 0, matching the pre-compaction convention for index 0.
func (l *Log) TermAt(i int64) uint64 {
	if i == l.base {
		return l.baseTerm
	}
	if ent, ok := l.At(i); ok {
		return ent.Term
	}
	return 0
}

// Append adds e at LastIndex+1. The caller owns index assignment; Append
// trusts e.Index when it equals LastIndex()+1 and panics otherwise, because
// a gapped engine log is a protocol bug, not a recoverable condition.
func (l *Log) Append(e Entry) {
	if e.Index != l.LastIndex()+1 {
		panic("protocol: log append gap")
	}
	l.ents = append(l.ents, e)
}

// Set overwrites the entry at global index i, which must be held.
func (l *Log) Set(i int64, e Entry) {
	if i <= l.base || i > l.LastIndex() {
		panic("protocol: log set outside held range")
	}
	l.ents[i-l.base-1] = e
}

// TruncateSuffix drops every entry with index > i (Raft's conflicting-
// suffix erase). i below base is clamped to base (nothing held survives).
func (l *Log) TruncateSuffix(i int64) {
	if i >= l.LastIndex() {
		return
	}
	if i < l.base {
		i = l.base
	}
	l.ents = l.ents[:i-l.base]
}

// TruncatePrefix drops every entry with index <= through, recording the
// dropped boundary's term so consistency checks against the compacted
// prefix still answer. through beyond LastIndex is clamped; through at or
// below base is a no-op. The retained tail is copied so the backing array
// of the compacted prefix can be collected.
func (l *Log) TruncatePrefix(through int64) {
	if through <= l.base {
		return
	}
	if through > l.LastIndex() {
		through = l.LastIndex()
	}
	l.baseTerm = l.TermAt(through)
	l.ents = append([]Entry(nil), l.ents[through-l.base:]...)
	l.base = through
}

// Restore primes the log from a snapshot boundary plus a durable tail:
// entries below or at base live in the snapshot; ents (which may be empty)
// must start at base+1. Any current content is discarded.
func (l *Log) Restore(base int64, baseTerm uint64, ents []Entry) {
	if len(ents) > 0 && ents[0].Index != base+1 {
		panic("protocol: log restore gap")
	}
	l.base = base
	l.baseTerm = baseTerm
	l.ents = append([]Entry(nil), ents...)
}

// Slice returns a copy of entries in [lo, hi] (global indexes); the range
// must be held.
func (l *Log) Slice(lo, hi int64) []Entry {
	if lo <= l.base || hi > l.LastIndex() || lo > hi {
		panic("protocol: log slice outside held range")
	}
	return append([]Entry(nil), l.ents[lo-l.base-1:hi-l.base]...)
}

// Tail returns a copy of entries in [lo, LastIndex]; lo above LastIndex
// yields nil.
func (l *Log) Tail(lo int64) []Entry {
	if lo > l.LastIndex() {
		return nil
	}
	return l.Slice(lo, l.LastIndex())
}
