package coorraft_test

import (
	"testing"

	"raftpaxos/internal/coorraft"
	"raftpaxos/internal/protocol"
	"raftpaxos/internal/testcluster"
)

func newCluster(seed int64, n int, policy coorraft.ReplyPolicy) *testcluster.Cluster {
	peers := make([]protocol.NodeID, n)
	for i := range peers {
		peers[i] = protocol.NodeID(i)
	}
	engines := make([]protocol.Engine, n)
	for i := range peers {
		engines[i] = coorraft.New(coorraft.Config{
			ID: peers[i], Peers: peers, HeartbeatTicks: 1, RevokeTicks: 20,
			Policy: policy, Seed: seed,
		})
	}
	return testcluster.New(seed, engines...)
}

func TestMultiLeaderCommit(t *testing.T) {
	c := newCluster(1, 5, coorraft.ReplyAtExecute)
	for i := 0; i < 5; i++ {
		c.Submit(protocol.NodeID(i), protocol.Command{
			ID: uint64(i + 1), Client: 500, Op: protocol.OpPut, Key: "k",
		})
	}
	c.Settle(10)
	if err := c.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
	for id, app := range c.Applied {
		real := 0
		for _, e := range app {
			if !e.Cmd.IsNop() {
				real++
			}
		}
		if real != 5 {
			t.Fatalf("node %d executed %d real commands, want 5", id, real)
		}
	}
}

func TestEveryReplicaReportsLeadership(t *testing.T) {
	c := newCluster(2, 3, coorraft.ReplyAtCommit)
	for _, e := range c.Engines {
		if !e.IsLeader() {
			t.Fatalf("replica %d should lead its slot class", e.ID())
		}
		if e.Leader() != e.ID() {
			t.Fatalf("replica %d reports leader %d", e.ID(), e.Leader())
		}
	}
}

func TestBoardExposed(t *testing.T) {
	c := newCluster(3, 3, coorraft.ReplyAtExecute)
	c.Submit(0, protocol.Command{ID: 1, Client: 500, Op: protocol.OpPut, Key: "k"})
	c.Settle(8)
	eng, ok := c.Engines[0].(*coorraft.Engine)
	if !ok {
		t.Fatal("engine type")
	}
	if eng.Board().ExecPrefix() < 1 {
		t.Fatalf("exec prefix = %d, want >= 1", eng.Board().ExecPrefix())
	}
}
