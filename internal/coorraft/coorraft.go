// Package coorraft implements Coordinated Raft* — Raft*-Mencius, the
// Mencius optimization ported from Paxos onto Raft* by the paper's method
// (Appendix A.4, Figure 15).
//
// The porting derivation lives at the specification level in
// internal/specs (CoorRaft is generated from the Mencius optimization and
// the Raft*⇒Paxos refinement mapping). At the runtime level, the derived
// protocol's message behaviour is identical to Coordinated Paxos's by
// construction of the refinement, so this engine shares the coordination
// core in internal/mencius. The two paper-specific details that a
// handworked port would miss are handled there once for both flavours:
// skip tags must be collected during leader change (BecomeLeader) and skip
// marking must happen in *both* append paths (AppendEntries on the default
// leader itself and ReceiveAppend on acceptors), because Paxos's single
// Phase2b action corresponds to multiple Raft* actions.
package coorraft

import (
	"raftpaxos/internal/mencius"
	"raftpaxos/internal/protocol"
)

// ReplyPolicy re-exports the coordination core's reply policies.
type ReplyPolicy = mencius.ReplyPolicy

// Policies.
const (
	// ReplyAtCommit is the commutative-operation (0%-conflict) mode.
	ReplyAtCommit = mencius.ReplyAtCommit
	// ReplyAtExecute is the conflicting-operation (100%-conflict) mode.
	ReplyAtExecute = mencius.ReplyAtExecute
)

// Config configures a Raft*-Mencius replica.
type Config struct {
	ID    protocol.NodeID
	Peers []protocol.NodeID

	HeartbeatTicks int
	// RevokeTicks is the silent-owner revocation threshold.
	RevokeTicks int
	Policy      ReplyPolicy
	Seed        int64
	// DisableRevocation turns crash recovery off.
	DisableRevocation bool
}

// Engine is a Raft*-Mencius replica.
type Engine struct {
	core *mencius.Engine
}

var _ protocol.Engine = (*Engine)(nil)

// New builds a Raft*-Mencius replica.
func New(cfg Config) *Engine {
	return &Engine{core: mencius.New(mencius.Config{
		ID:                cfg.ID,
		Peers:             cfg.Peers,
		HeartbeatTicks:    cfg.HeartbeatTicks,
		RevokeTicks:       cfg.RevokeTicks,
		Policy:            cfg.Policy,
		Seed:              cfg.Seed,
		DisableRevocation: cfg.DisableRevocation,
	})}
}

// ID implements protocol.Engine.
func (e *Engine) ID() protocol.NodeID { return e.core.ID() }

// Tick implements protocol.Engine.
func (e *Engine) Tick() protocol.Output { return e.core.Tick() }

// Step implements protocol.Engine.
func (e *Engine) Step(from protocol.NodeID, msg protocol.Message) protocol.Output {
	return e.core.Step(from, msg)
}

// Submit implements protocol.Engine.
func (e *Engine) Submit(cmd protocol.Command) protocol.Output { return e.core.Submit(cmd) }

// SubmitRead implements protocol.Engine.
func (e *Engine) SubmitRead(cmd protocol.Command) protocol.Output { return e.core.SubmitRead(cmd) }

// Leader implements protocol.Engine.
func (e *Engine) Leader() protocol.NodeID { return e.core.Leader() }

// IsLeader implements protocol.Engine.
func (e *Engine) IsLeader() bool { return e.core.IsLeader() }

// Board exposes the coordination state.
func (e *Engine) Board() *mencius.Board { return e.core.Board() }

// Term exposes the coordination core's revocation-ballot watermark for
// the live driver's hard-state snapshot.
func (e *Engine) Term() uint64 { return e.core.Term() }

// CommitIndex exposes the executed prefix for the live driver's
// hard-state snapshot.
func (e *Engine) CommitIndex() int64 { return e.core.CommitIndex() }

// RestoreHardState forwards the live driver's restart restore to the
// coordination core.
func (e *Engine) RestoreHardState(term uint64, votedFor protocol.NodeID) {
	e.core.RestoreHardState(term, votedFor)
}

// RestoreSnapshot forwards the snapshot boundary to the coordination core.
func (e *Engine) RestoreSnapshot(index int64, term uint64) {
	e.core.RestoreSnapshot(index, term)
}

// RestoreLog forwards the live driver's restart restore to the
// coordination core.
func (e *Engine) RestoreLog(ents []protocol.Entry, commit int64) {
	e.core.RestoreLog(ents, commit)
}

// TruncatePrefix implements protocol.PrefixTruncator.
func (e *Engine) TruncatePrefix(through int64) { e.core.TruncatePrefix(through) }

// LogLen returns the number of slots with materialized state.
func (e *Engine) LogLen() int { return e.core.LogLen() }
