// Package lease implements the quorum-lease bookkeeping shared by Paxos
// Quorum Lease (PQL), its Raft* port, and the leader-lease baseline. Time
// is logical ticks, driven by the host engine, so the same code runs under
// the simulator and live drivers.
//
// Model (Moraru et al., "Paxos Quorum Leases"): every replica may grant a
// lease to any other replica. A grantor renews its grants every renew
// period; a grant is valid at the holder until its expiry tick. The holder
// acknowledges each grant, and a grantor only counts a holder as active if
// it acknowledged a recent grant — so a crashed holder falls out of every
// grantor's holder set within one lease duration and stops blocking writes.
// A replica holds a quorum lease when it holds valid leases from at least a
// quorum of replicas (itself included).
package lease

import "raftpaxos/internal/protocol"

// Wire stability: grant messages travel the live wire through internal/wire;
// exported field ORDER is the encoded layout and is frozen. Append new
// fields at the end and bump the transport's wireVersion.
//
// MsgGrant is a lease grant (or renewal) from a grantor to a holder.
type MsgGrant struct {
	// Duration is the validity period in ticks from receipt.
	Duration int
	// Seq numbers the grant so acknowledgements can be matched.
	Seq uint64
}

// WireSize implements protocol.Message.
func (m *MsgGrant) WireSize() int { return 12 }

// MsgGrantAck acknowledges a grant.
type MsgGrantAck struct {
	Seq uint64
}

// WireSize implements protocol.Message.
func (m *MsgGrantAck) WireSize() int { return 8 }

// Config configures a lease table.
type Config struct {
	Self  protocol.NodeID
	Peers []protocol.NodeID // all replicas, including Self
	// DurationTicks is the lease validity period (paper: 2 s).
	DurationTicks int
	// RenewTicks is the grant renewal period (paper: 0.5 s).
	RenewTicks int
	// Grantees restricts who this replica grants to (nil = everyone).
	// The leader-lease baseline sets a single grantee.
	Grantees []protocol.NodeID
}

// Table tracks leases granted by and held at one replica.
type Table struct {
	cfg Config
	now int

	seq        uint64
	sinceRenew int
	// held[g] is the expiry tick of the lease granted by g to us.
	held map[protocol.NodeID]int
	// ackedAt[h] is the tick at which holder h last acknowledged a grant
	// from us; h counts as an active holder until ackedAt[h]+Duration.
	ackedAt map[protocol.NodeID]int
	// grantSent[h] is the seq of the last grant sent to h.
	grantSent map[protocol.NodeID]uint64
}

// NewTable builds a lease table.
func NewTable(cfg Config) *Table {
	if cfg.DurationTicks <= 0 {
		cfg.DurationTicks = 200
	}
	if cfg.RenewTicks <= 0 {
		cfg.RenewTicks = cfg.DurationTicks / 4
	}
	return &Table{
		cfg: cfg,
		// First grants go out on the first tick, not a full renew period
		// later: grantors start granting as soon as they are up.
		sinceRenew: cfg.RenewTicks,
		held:       make(map[protocol.NodeID]int),
		ackedAt:    make(map[protocol.NodeID]int),
		grantSent:  make(map[protocol.NodeID]uint64),
	}
}

// Now returns the current logical tick.
func (t *Table) Now() int { return t.now }

func (t *Table) grantees() []protocol.NodeID {
	if t.cfg.Grantees != nil {
		return t.cfg.Grantees
	}
	return t.cfg.Peers
}

// SetGrantees changes the grantee set (leader-lease mode re-targets the
// current leader). An empty set means "grant to nobody" — distinct from
// the nil default of "grant to everyone", so the copy must stay non-nil.
func (t *Table) SetGrantees(g []protocol.NodeID) {
	out := make([]protocol.NodeID, len(g))
	copy(out, g)
	t.cfg.Grantees = out
}

// Tick advances logical time and returns the grant messages to send this
// tick (empty unless the renew period elapsed).
func (t *Table) Tick() []protocol.Envelope {
	t.now++
	t.sinceRenew++
	if t.sinceRenew < t.cfg.RenewTicks {
		return nil
	}
	t.sinceRenew = 0
	var msgs []protocol.Envelope
	for _, p := range t.grantees() {
		if p == t.cfg.Self {
			continue
		}
		t.seq++
		t.grantSent[p] = t.seq
		msgs = append(msgs, protocol.Envelope{
			From: t.cfg.Self, To: p,
			Msg: &MsgGrant{Duration: t.cfg.DurationTicks, Seq: t.seq},
		})
	}
	return msgs
}

// Step handles lease messages, returning any reply and whether the message
// was a lease message at all.
func (t *Table) Step(from protocol.NodeID, msg protocol.Message) ([]protocol.Envelope, bool) {
	switch m := msg.(type) {
	case *MsgGrant:
		t.held[from] = t.now + m.Duration
		return []protocol.Envelope{{
			From: t.cfg.Self, To: from, Msg: &MsgGrantAck{Seq: m.Seq},
		}}, true
	case *MsgGrantAck:
		// Conservative: only the latest grant's ack refreshes the holder.
		if m.Seq == t.grantSent[from] {
			t.ackedAt[from] = t.now
		}
		return nil, true
	default:
		return nil, false
	}
}

// HeldCount returns how many valid leases this replica currently holds,
// including its implicit self-lease.
func (t *Table) HeldCount() int {
	n := 1 // self
	for g, exp := range t.held {
		if g != t.cfg.Self && exp > t.now {
			n++
		}
	}
	return n
}

// HasQuorumLease reports whether this replica holds leases from a quorum.
func (t *Table) HasQuorumLease() bool {
	return t.HeldCount() >= protocol.Quorum(len(t.cfg.Peers))
}

// Holders returns the replicas currently holding an active lease granted
// by this replica (itself included): the set whose acknowledgement a
// commit must collect.
func (t *Table) Holders() []protocol.NodeID {
	holders := []protocol.NodeID{t.cfg.Self}
	for _, p := range t.grantees() {
		if p == t.cfg.Self {
			continue
		}
		if at, ok := t.ackedAt[p]; ok && at+t.cfg.DurationTicks > t.now {
			holders = append(holders, p)
		}
	}
	return holders
}

// Expire drops the lease held from grantor g (tests use it to simulate
// clock-driven expiry without waiting).
func (t *Table) Expire(g protocol.NodeID) { delete(t.held, g) }
