// Package lease implements the quorum-lease bookkeeping shared by Paxos
// Quorum Lease (PQL), its Raft* port, and the leader-lease baseline. Time
// is logical ticks, driven by the host engine, so the same code runs under
// the simulator and live drivers.
//
// Model (Moraru et al., "Paxos Quorum Leases"): every replica may grant a
// lease to any other replica. A grantor renews its grants every renew
// period; a grant is valid at the holder until its expiry tick. The holder
// acknowledges each grant, and a grantor only keeps renewing to a holder
// that acknowledged a recent grant — so a crashed holder falls out of every
// grantor's holder set within one lease duration (plus two renew periods)
// and stops blocking writes. A replica holds a quorum lease when it holds
// valid leases from at least a quorum of replicas (itself included).
//
// Clock-skew safety: the grantor and holder measure the lease duration on
// different clocks, so the two windows must be asymmetric or relative drift
// (and delivery delay, which burns holder-side time before the grant even
// arrives) lets the holder trust a lease the grantor no longer honors — a
// stale local read. Three rules keep the trusted window strictly inside the
// honored one:
//
//  1. Guard band: the holder trusts a grant only until
//     now + Duration − SkewMarginTicks, while the grantor honors it for the
//     full Duration. The margin absorbs delivery delay plus bounded drift:
//     with the holder's tick up to r× slower than the grantor's and one-way
//     delay at most δ grantor-ticks, safety needs
//     margin ≥ Duration·(1−1/r) + δ/r.
//  2. Send anchoring: the grantor starts honoring at grant *send*
//     (grantedUntil = send + Duration), not at ack receipt — an in-flight
//     renewal whose ack was lost is still honored, so the holder can never
//     be refreshed by a grant the grantor has forgotten.
//  3. Ack-gated renewal: a grantor that has not seen an ack within two
//     renew periods stops extending its honor window and sends Duration-0
//     probe grants instead. A probe conveys no trust (it expires
//     immediately at the holder) but still elicits an ack, so a recovered
//     holder resumes receiving real grants one round-trip later while a
//     crashed one stops blocking commits. The very first grant to a
//     grantee is sent in full (there is no ack history yet); send
//     anchoring caps the cost of granting to a dead node at one duration.
//
// A fully paused holder clock is outside this model: a holder that never
// ticks never expires its own lease. The margin assumes bounded drift and
// bounded pauses (shorter than the margin); the campaign harness attacks
// exactly this envelope.
package lease

import "raftpaxos/internal/protocol"

// Wire stability: grant messages travel the live wire through internal/wire;
// exported field ORDER is the encoded layout and is frozen. Append new
// fields at the end and bump the transport's wireVersion.
//
// MsgGrant is a lease grant (or renewal) from a grantor to a holder. A
// Duration of 0 is a probe: it conveys no trust but solicits an ack so the
// grantor can tell a slow holder from a dead one.
type MsgGrant struct {
	// Duration is the validity period in ticks (0 = probe, see above). The
	// holder trusts the grant for Duration minus its configured skew margin,
	// measured from receipt; the grantor honors it for the full Duration,
	// measured from send.
	Duration int
	// Seq numbers the grant so acknowledgements can be matched and stale
	// (delayed or replayed) grants discarded by the holder.
	Seq uint64
}

// WireSize implements protocol.Message.
func (m *MsgGrant) WireSize() int { return 12 }

// MsgGrantAck acknowledges a grant.
type MsgGrantAck struct {
	Seq uint64
}

// WireSize implements protocol.Message.
func (m *MsgGrantAck) WireSize() int { return 8 }

// Config configures a lease table.
type Config struct {
	Self  protocol.NodeID
	Peers []protocol.NodeID // all replicas, including Self
	// DurationTicks is the lease validity period (paper: 2 s).
	DurationTicks int
	// RenewTicks is the grant renewal period (paper: 0.5 s).
	RenewTicks int
	// SkewMarginTicks is the holder-side guard band: a holder trusts a
	// grant only until now + Duration − SkewMarginTicks, while the grantor
	// honors it for the full Duration. 0 (or any out-of-range value)
	// defaults to DurationTicks/8. See the package comment for sizing.
	SkewMarginTicks int
	// Grantees restricts who this replica grants to (nil = everyone).
	// The leader-lease baseline sets a single grantee.
	Grantees []protocol.NodeID
	// UnsafeNoGuard restores the pre-guard-band semantics — full-Duration
	// receipt-anchored trust at the holder, ack-receipt-anchored honoring
	// at the grantor, no probes. Exists only so sabotage tests and
	// `raftpaxos-check -campaign-sabotage` can reproduce the stale read
	// the guard band prevents. Never set it in production.
	UnsafeNoGuard bool
}

// Table tracks leases granted by and held at one replica.
type Table struct {
	cfg Config
	now int

	seq        uint64
	sinceRenew int
	// held[g] is the expiry tick of the lease granted by g to us
	// (guard band already subtracted).
	held map[protocol.NodeID]int
	// lastGrantSeq[g] is the highest grant Seq seen from grantor g; grants
	// at or below it are stale (delayed or replayed) and ignored.
	lastGrantSeq map[protocol.NodeID]uint64
	// ackedAt[h] is the tick at which holder h last acknowledged a grant
	// from us; renewals to h stop (demote to probes) once that ack is
	// more than two renew periods old.
	ackedAt map[protocol.NodeID]int
	// grantedUntil[h] is the tick through which we honor h as a lease
	// holder, anchored at grant send: every full grant sent to h extends
	// it to send + Duration, whether or not the ack arrives.
	grantedUntil map[protocol.NodeID]int
	// grantSent[h] is the seq of the last grant sent to h.
	grantSent map[protocol.NodeID]uint64
}

// NewTable builds a lease table.
func NewTable(cfg Config) *Table {
	if cfg.DurationTicks <= 0 {
		cfg.DurationTicks = 200
	}
	if cfg.RenewTicks <= 0 {
		cfg.RenewTicks = cfg.DurationTicks / 4
	}
	if cfg.SkewMarginTicks <= 0 || cfg.SkewMarginTicks >= cfg.DurationTicks {
		cfg.SkewMarginTicks = cfg.DurationTicks / 8
		if cfg.SkewMarginTicks < 1 {
			cfg.SkewMarginTicks = 1
		}
	}
	return &Table{
		cfg: cfg,
		// First grants go out on the first tick, not a full renew period
		// later: grantors start granting as soon as they are up.
		sinceRenew:   cfg.RenewTicks,
		held:         make(map[protocol.NodeID]int),
		lastGrantSeq: make(map[protocol.NodeID]uint64),
		ackedAt:      make(map[protocol.NodeID]int),
		grantedUntil: make(map[protocol.NodeID]int),
		grantSent:    make(map[protocol.NodeID]uint64),
	}
}

// Now returns the current logical tick.
func (t *Table) Now() int { return t.now }

func (t *Table) margin() int {
	if t.cfg.UnsafeNoGuard {
		return 0
	}
	return t.cfg.SkewMarginTicks
}

func (t *Table) grantees() []protocol.NodeID {
	if t.cfg.Grantees != nil {
		return t.cfg.Grantees
	}
	return t.cfg.Peers
}

// SetGrantees changes the grantee set (leader-lease mode re-targets the
// current leader). An empty set means "grant to nobody" — distinct from
// the nil default of "grant to everyone", so the copy must stay non-nil.
func (t *Table) SetGrantees(g []protocol.NodeID) {
	out := make([]protocol.NodeID, len(g))
	copy(out, g)
	t.cfg.Grantees = out
}

// ackFresh reports whether holder h acknowledged a grant recently enough
// to keep receiving real (trust-bearing) renewals.
func (t *Table) ackFresh(h protocol.NodeID) bool {
	at, ok := t.ackedAt[h]
	return ok && t.now < at+2*t.cfg.RenewTicks
}

// Tick advances logical time and returns the grant messages to send this
// tick (empty unless the renew period elapsed).
func (t *Table) Tick() []protocol.Envelope {
	t.now++
	t.sinceRenew++
	if t.sinceRenew < t.cfg.RenewTicks {
		return nil
	}
	t.sinceRenew = 0
	var msgs []protocol.Envelope
	for _, p := range t.grantees() {
		if p == t.cfg.Self {
			continue
		}
		_, contacted := t.grantSent[p]
		t.seq++
		t.grantSent[p] = t.seq
		dur := t.cfg.DurationTicks
		// First contact grants in full (send anchoring caps the cost of a
		// dead grantee at one duration); after that, a grantee that went
		// silent is demoted to probes until it acks again.
		if t.cfg.UnsafeNoGuard || !contacted || t.ackFresh(p) {
			// Honor the grant from the moment it leaves, for the full
			// duration: even if the ack is lost, the holder may trust it.
			t.grantedUntil[p] = t.now + dur
		} else {
			// No recent ack: probe instead of granting, so a dead holder
			// stops extending its honor window (and blocking commits)
			// while a live one re-announces itself with the ack.
			dur = 0
		}
		msgs = append(msgs, protocol.Envelope{
			From: t.cfg.Self, To: p,
			Msg: &MsgGrant{Duration: dur, Seq: t.seq},
		})
	}
	return msgs
}

// Step handles lease messages, returning any reply and whether the message
// was a lease message at all.
func (t *Table) Step(from protocol.NodeID, msg protocol.Message) ([]protocol.Envelope, bool) {
	switch m := msg.(type) {
	case *MsgGrant:
		// A grant at or below the highest Seq seen from this grantor is a
		// delayed duplicate or a replay: trusting it would re-validate an
		// expired lease the grantor no longer honors. Drop it unacked.
		if m.Seq <= t.lastGrantSeq[from] {
			return nil, true
		}
		t.lastGrantSeq[from] = m.Seq
		t.held[from] = t.now + m.Duration - t.margin()
		return []protocol.Envelope{{
			From: t.cfg.Self, To: from, Msg: &MsgGrantAck{Seq: m.Seq},
		}}, true
	case *MsgGrantAck:
		// Conservative: only the latest grant's ack refreshes the holder.
		if m.Seq == t.grantSent[from] {
			t.ackedAt[from] = t.now
		}
		return nil, true
	default:
		return nil, false
	}
}

// HeldCount returns how many valid leases this replica currently holds,
// including its implicit self-lease.
func (t *Table) HeldCount() int {
	n := 1 // self
	for g, exp := range t.held {
		if g != t.cfg.Self && exp > t.now {
			n++
		}
	}
	return n
}

// HasQuorumLease reports whether this replica holds leases from a quorum.
func (t *Table) HasQuorumLease() bool {
	return t.HeldCount() >= protocol.Quorum(len(t.cfg.Peers))
}

// HeldUntil returns the expiry tick of the lease held from grantor g (the
// guard band already subtracted) and whether any grant from g was seen.
func (t *Table) HeldUntil(g protocol.NodeID) (int, bool) {
	exp, ok := t.held[g]
	return exp, ok
}

// Holders returns the replicas currently holding an active lease granted
// by this replica (itself included): the set whose acknowledgement a
// commit must collect. A holder is active through the end of every full
// grant sent to it — anchored at send, so it covers everything the holder
// could possibly still trust.
func (t *Table) Holders() []protocol.NodeID {
	holders := []protocol.NodeID{t.cfg.Self}
	for _, p := range t.grantees() {
		if p == t.cfg.Self {
			continue
		}
		if t.cfg.UnsafeNoGuard {
			if at, ok := t.ackedAt[p]; ok && at+t.cfg.DurationTicks > t.now {
				holders = append(holders, p)
			}
			continue
		}
		if until, ok := t.grantedUntil[p]; ok && until > t.now {
			holders = append(holders, p)
		}
	}
	return holders
}

// Expire drops the lease held from grantor g (tests use it to simulate
// clock-driven expiry without waiting).
func (t *Table) Expire(g protocol.NodeID) { delete(t.held, g) }
