package lease_test

import (
	"testing"

	"raftpaxos/internal/lease"
	"raftpaxos/internal/protocol"
)

func peers(n int) []protocol.NodeID {
	out := make([]protocol.NodeID, n)
	for i := range out {
		out[i] = protocol.NodeID(i)
	}
	return out
}

// wire delivers lease messages between a set of tables instantly.
type wire struct {
	tables map[protocol.NodeID]*lease.Table
}

func (w *wire) route(msgs []protocol.Envelope) {
	for len(msgs) > 0 {
		env := msgs[0]
		msgs = msgs[1:]
		if t, ok := w.tables[env.To]; ok {
			more, handled := t.Step(env.From, env.Msg)
			if !handled {
				panic("non-lease message on lease wire")
			}
			msgs = append(msgs, more...)
		}
	}
}

func newMesh(n, duration, renew int) (*wire, []*lease.Table) {
	w := &wire{tables: make(map[protocol.NodeID]*lease.Table)}
	ps := peers(n)
	tables := make([]*lease.Table, n)
	for i := range tables {
		tables[i] = lease.NewTable(lease.Config{
			Self: ps[i], Peers: ps, DurationTicks: duration, RenewTicks: renew,
		})
		w.tables[ps[i]] = tables[i]
	}
	return w, tables
}

func tickAll(w *wire, tables []*lease.Table) {
	for _, t := range tables {
		w.route(t.Tick())
	}
}

func TestQuorumLeaseEstablishes(t *testing.T) {
	w, tables := newMesh(3, 20, 5)
	for i := 0; i < 6; i++ {
		tickAll(w, tables)
	}
	for i, tab := range tables {
		if !tab.HasQuorumLease() {
			t.Fatalf("table %d: no quorum lease after grants (held=%d)", i, tab.HeldCount())
		}
		if got := len(tab.Holders()); got != 3 {
			t.Fatalf("table %d: %d active holders, want 3", i, got)
		}
	}
}

func TestLeaseExpiresWithoutRenewal(t *testing.T) {
	w, tables := newMesh(3, 10, 4)
	for i := 0; i < 5; i++ {
		tickAll(w, tables)
	}
	if !tables[1].HasQuorumLease() {
		t.Fatal("lease should be active")
	}
	// Stop routing grants to/from table 1 (its peers keep ticking).
	delete(w.tables, 1)
	for i := 0; i < 15; i++ {
		tickAll(w, tables[:1])
		tickAll(w, tables[2:])
		// Table 1 ticks alone; its messages go nowhere.
		tables[1].Tick()
	}
	if tables[1].HasQuorumLease() {
		t.Fatal("lease should have expired without renewals")
	}
	// The crashed holder must fall out of its grantors' holder sets so it
	// stops blocking commits.
	for _, id := range []int{0, 2} {
		for _, h := range tables[id].Holders() {
			if h == 1 {
				t.Fatalf("table %d still counts the dead holder", id)
			}
		}
	}
}

func TestGranteeRestriction(t *testing.T) {
	w := &wire{tables: make(map[protocol.NodeID]*lease.Table)}
	ps := peers(3)
	tables := make([]*lease.Table, 3)
	for i := range tables {
		cfg := lease.Config{Self: ps[i], Peers: ps, DurationTicks: 20, RenewTicks: 5}
		cfg.Grantees = []protocol.NodeID{2} // leader-lease style: only node 2
		tables[i] = lease.NewTable(cfg)
		w.tables[ps[i]] = tables[i]
	}
	for i := 0; i < 6; i++ {
		tickAll(w, tables)
	}
	if !tables[2].HasQuorumLease() {
		t.Fatal("designated grantee should hold a quorum lease")
	}
	if tables[0].HasQuorumLease() {
		t.Fatal("non-grantee should hold no quorum lease")
	}
}

// TestStaleGrantReplayIgnored is the regression for the replayed-grant
// hole: a delayed or duplicated MsgGrant whose Seq is at or below the
// latest seen from that grantor must not re-validate an expired lease.
func TestStaleGrantReplayIgnored(t *testing.T) {
	ps := peers(3)
	h := lease.NewTable(lease.Config{
		Self: 1, Peers: ps, DurationTicks: 10, RenewTicks: 4, SkewMarginTicks: 2,
	})
	acks, _ := h.Step(0, &lease.MsgGrant{Duration: 10, Seq: 5})
	if len(acks) != 1 {
		t.Fatal("fresh grant should be acked")
	}
	if exp, ok := h.HeldUntil(0); !ok || exp != 8 {
		t.Fatalf("held until %d, want 8 (receipt + duration - margin)", exp)
	}
	for i := 0; i < 12; i++ {
		h.Tick()
	}
	if h.HeldCount() != 1 {
		t.Fatal("lease should have expired")
	}
	// An older grant arriving late must be dropped unacked.
	if acks, _ = h.Step(0, &lease.MsgGrant{Duration: 10, Seq: 4}); len(acks) != 0 || h.HeldCount() != 1 {
		t.Fatal("stale grant re-validated an expired lease")
	}
	// An exact replay of the latest grant is stale too.
	if acks, _ = h.Step(0, &lease.MsgGrant{Duration: 10, Seq: 5}); len(acks) != 0 || h.HeldCount() != 1 {
		t.Fatal("replayed grant re-validated an expired lease")
	}
	// A genuinely newer grant still works.
	if acks, _ = h.Step(0, &lease.MsgGrant{Duration: 10, Seq: 6}); len(acks) != 1 || h.HeldCount() != 2 {
		t.Fatal("fresh grant should re-establish the lease")
	}
}

// TestGuardBandTrustEndsBeforeHonor pins the asymmetric windows: the
// holder trusts receipt + Duration − margin, the grantor honors send +
// Duration — even when the grant's ack never arrives.
func TestGuardBandTrustEndsBeforeHonor(t *testing.T) {
	ps := peers(2)
	mk := func(self protocol.NodeID) *lease.Table {
		return lease.NewTable(lease.Config{
			Self: self, Peers: ps, DurationTicks: 20, RenewTicks: 5, SkewMarginTicks: 4,
		})
	}
	g, h := mk(0), mk(1)
	deliver := func(envs []protocol.Envelope, to *lease.Table) []protocol.Envelope {
		var out []protocol.Envelope
		for _, env := range envs {
			more, ok := to.Step(env.From, env.Msg)
			if !ok {
				t.Fatal("non-lease message on lease wire")
			}
			out = append(out, more...)
		}
		return out
	}
	// Bootstrap: first contact is a full grant; its ack keeps renewals full.
	h.Tick()
	deliver(deliver(g.Tick(), h), g)
	var grant []protocol.Envelope
	for i := 0; i < 5; i++ {
		h.Tick()
		grant = g.Tick()
	}
	if len(grant) != 1 {
		t.Fatalf("expected one renewal grant, got %d msgs", len(grant))
	}
	if d := grant[0].Msg.(*lease.MsgGrant).Duration; d != 20 {
		t.Fatalf("renewal after an ack should carry the full duration, got %d", d)
	}
	deliver(grant, h) // the ack is dropped: honor must anchor at send
	if exp, _ := h.HeldUntil(0); exp != 22 {
		t.Fatalf("holder trusts until %d, want 22 (receipt 6 + 20 - 4)", exp)
	}
	// The grantor honors the unacked grant for the full duration from send
	// (tick 6): through tick 25 inclusive.
	for g.Now() < 25 {
		g.Tick()
	}
	if len(g.Holders()) != 2 {
		t.Fatal("grantor must honor an unacked grant through send+Duration")
	}
	g.Tick()
	if len(g.Holders()) != 1 {
		t.Fatal("grantor must drop the holder after send+Duration")
	}
	// The holder's trust ended four ticks earlier on its own clock.
	for h.Now() < 22 {
		h.Tick()
	}
	if h.HeldCount() != 1 {
		t.Fatal("holder must stop trusting at receipt+Duration-margin")
	}
}

// skewViolationOccurs runs a grantor whose clock ticks 2× the holder's,
// cuts the link mid-run, and reports whether the holder ever trusted a
// lease the grantor had stopped honoring — the stale-read window.
func skewViolationOccurs(t *testing.T, unsafe bool) bool {
	t.Helper()
	ps := peers(2)
	mk := func(self protocol.NodeID) *lease.Table {
		return lease.NewTable(lease.Config{
			Self: self, Peers: ps, DurationTicks: 20, RenewTicks: 5,
			// For a holder up to 2× slower, safety needs
			// margin ≥ D·(1−1/2) + δ/2 = 10 + δ/2.
			SkewMarginTicks: 12,
			UnsafeNoGuard:   unsafe,
		})
	}
	g, h := mk(0), mk(1)
	route := func(envs []protocol.Envelope, to *lease.Table) []protocol.Envelope {
		var out []protocol.Envelope
		for _, env := range envs {
			more, ok := to.Step(env.From, env.Msg)
			if !ok {
				t.Fatal("non-lease message on lease wire")
			}
			out = append(out, more...)
		}
		return out
	}
	linked := true
	violated := false
	for round := 0; round < 100; round++ {
		if round == 10 {
			linked = false
		}
		for i := 0; i < 2; i++ { // grantor's clock runs 2× the holder's
			envs := g.Tick()
			if linked {
				route(route(envs, h), g)
			}
		}
		envs := h.Tick()
		if linked {
			route(route(envs, g), h)
		}
		if h.HeldCount() == 2 && len(g.Holders()) != 2 {
			violated = true
		}
	}
	if h.HeldCount() == 2 {
		t.Fatal("holder lease should eventually expire")
	}
	return violated
}

func TestSkewedClockSafeWithGuardBand(t *testing.T) {
	if skewViolationOccurs(t, false) {
		t.Fatal("holder trusted a lease the grantor no longer honored despite the guard band")
	}
}

// TestSkewedClockUnsafeWithoutGuardBand keeps the skew test honest: with
// the guard band reverted the same schedule MUST open a stale-trust
// window. If it stops doing so, the safe run's pass means nothing.
func TestSkewedClockUnsafeWithoutGuardBand(t *testing.T) {
	if !skewViolationOccurs(t, true) {
		t.Fatal("sabotage run found no stale-trust window — the skew test has no teeth")
	}
}

// TestHolderRecoversAfterProbation: a holder cut off long enough to be
// demoted to probes reacquires its quorum lease within two renew periods
// of healing (probe → ack → full grant).
func TestHolderRecoversAfterProbation(t *testing.T) {
	w, tables := newMesh(3, 20, 5)
	for i := 0; i < 6; i++ {
		tickAll(w, tables)
	}
	if !tables[1].HasQuorumLease() {
		t.Fatal("lease should be active")
	}
	delete(w.tables, 1)
	for i := 0; i < 30; i++ {
		tickAll(w, tables[:1])
		tickAll(w, tables[2:])
		tables[1].Tick()
	}
	if tables[1].HasQuorumLease() {
		t.Fatal("cut-off holder should have expired")
	}
	for _, id := range []int{0, 2} {
		if len(tables[id].Holders()) != 2 {
			t.Fatalf("table %d should honor only the live pair, got %d holders", id, len(tables[id].Holders()))
		}
	}
	w.tables[1] = tables[1]
	for i := 0; i < 11; i++ {
		tickAll(w, tables)
	}
	if !tables[1].HasQuorumLease() {
		t.Fatal("healed holder should reacquire its quorum lease")
	}
}

func TestExpireHelper(t *testing.T) {
	w, tables := newMesh(3, 20, 5)
	for i := 0; i < 6; i++ {
		tickAll(w, tables)
	}
	tables[0].Expire(1)
	tables[0].Expire(2)
	if tables[0].HasQuorumLease() {
		t.Fatal("manual expiry should drop the quorum lease")
	}
}
