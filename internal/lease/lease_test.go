package lease_test

import (
	"testing"

	"raftpaxos/internal/lease"
	"raftpaxos/internal/protocol"
)

func peers(n int) []protocol.NodeID {
	out := make([]protocol.NodeID, n)
	for i := range out {
		out[i] = protocol.NodeID(i)
	}
	return out
}

// wire delivers lease messages between a set of tables instantly.
type wire struct {
	tables map[protocol.NodeID]*lease.Table
}

func (w *wire) route(msgs []protocol.Envelope) {
	for len(msgs) > 0 {
		env := msgs[0]
		msgs = msgs[1:]
		if t, ok := w.tables[env.To]; ok {
			more, handled := t.Step(env.From, env.Msg)
			if !handled {
				panic("non-lease message on lease wire")
			}
			msgs = append(msgs, more...)
		}
	}
}

func newMesh(n, duration, renew int) (*wire, []*lease.Table) {
	w := &wire{tables: make(map[protocol.NodeID]*lease.Table)}
	ps := peers(n)
	tables := make([]*lease.Table, n)
	for i := range tables {
		tables[i] = lease.NewTable(lease.Config{
			Self: ps[i], Peers: ps, DurationTicks: duration, RenewTicks: renew,
		})
		w.tables[ps[i]] = tables[i]
	}
	return w, tables
}

func tickAll(w *wire, tables []*lease.Table) {
	for _, t := range tables {
		w.route(t.Tick())
	}
}

func TestQuorumLeaseEstablishes(t *testing.T) {
	w, tables := newMesh(3, 20, 5)
	for i := 0; i < 6; i++ {
		tickAll(w, tables)
	}
	for i, tab := range tables {
		if !tab.HasQuorumLease() {
			t.Fatalf("table %d: no quorum lease after grants (held=%d)", i, tab.HeldCount())
		}
		if got := len(tab.Holders()); got != 3 {
			t.Fatalf("table %d: %d active holders, want 3", i, got)
		}
	}
}

func TestLeaseExpiresWithoutRenewal(t *testing.T) {
	w, tables := newMesh(3, 10, 4)
	for i := 0; i < 5; i++ {
		tickAll(w, tables)
	}
	if !tables[1].HasQuorumLease() {
		t.Fatal("lease should be active")
	}
	// Stop routing grants to/from table 1 (its peers keep ticking).
	delete(w.tables, 1)
	for i := 0; i < 15; i++ {
		tickAll(w, tables[:1])
		tickAll(w, tables[2:])
		// Table 1 ticks alone; its messages go nowhere.
		tables[1].Tick()
	}
	if tables[1].HasQuorumLease() {
		t.Fatal("lease should have expired without renewals")
	}
	// The crashed holder must fall out of its grantors' holder sets so it
	// stops blocking commits.
	for _, id := range []int{0, 2} {
		for _, h := range tables[id].Holders() {
			if h == 1 {
				t.Fatalf("table %d still counts the dead holder", id)
			}
		}
	}
}

func TestGranteeRestriction(t *testing.T) {
	w := &wire{tables: make(map[protocol.NodeID]*lease.Table)}
	ps := peers(3)
	tables := make([]*lease.Table, 3)
	for i := range tables {
		cfg := lease.Config{Self: ps[i], Peers: ps, DurationTicks: 20, RenewTicks: 5}
		cfg.Grantees = []protocol.NodeID{2} // leader-lease style: only node 2
		tables[i] = lease.NewTable(cfg)
		w.tables[ps[i]] = tables[i]
	}
	for i := 0; i < 6; i++ {
		tickAll(w, tables)
	}
	if !tables[2].HasQuorumLease() {
		t.Fatal("designated grantee should hold a quorum lease")
	}
	if tables[0].HasQuorumLease() {
		t.Fatal("non-grantee should hold no quorum lease")
	}
}

func TestExpireHelper(t *testing.T) {
	w, tables := newMesh(3, 20, 5)
	for i := 0; i < 6; i++ {
		tickAll(w, tables)
	}
	tables[0].Expire(1)
	tables[0].Expire(2)
	if tables[0].HasQuorumLease() {
		t.Fatal("manual expiry should drop the quorum lease")
	}
}
