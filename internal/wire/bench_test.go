package wire

import (
	"testing"

	"raftpaxos/internal/protocol"
	"raftpaxos/internal/raft"
)

// benchAppendReq is the hot-path message shape: a leader append carrying a
// batch of puts, as produced by a loaded live cluster.
func benchAppendReq(entries int) *raft.MsgAppendReq {
	m := &raft.MsgAppendReq{Term: 7, PrevIndex: 1 << 20, PrevTerm: 7, Commit: 1 << 20, ReadCtx: 99}
	for i := 0; i < entries; i++ {
		m.Entries = append(m.Entries, protocol.Entry{
			Index: int64(1<<20 + i + 1),
			Term:  7,
			Bal:   7,
			Cmd: protocol.Command{
				ID:     uint64(i),
				Client: 3,
				Op:     protocol.OpPut,
				Key:    "bench-key-0123456789",
				Value:  make([]byte, 128),
			},
		})
	}
	return m
}

func benchmarkEncode(b *testing.B, msg protocol.Message) {
	b.Helper()
	var buf []byte
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = AppendMessage(buf[:0], 1, msg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
	// The whole point of the codec: steady-state encode into a reused
	// buffer must not allocate.
	if b.N > 1 {
		allocs := testing.AllocsPerRun(100, func() {
			buf, _ = AppendMessage(buf[:0], 1, msg)
		})
		if allocs != 0 {
			b.Fatalf("encode allocates %v times per op, want 0", allocs)
		}
	}
}

func BenchmarkWireEncodeAppendReq64(b *testing.B) { benchmarkEncode(b, benchAppendReq(64)) }
func BenchmarkWireEncodeAppendReq1(b *testing.B)  { benchmarkEncode(b, benchAppendReq(1)) }
func BenchmarkWireEncodeHeartbeat(b *testing.B)   { benchmarkEncode(b, benchAppendReq(0)) }
func BenchmarkWireEncodeVoteResp(b *testing.B) {
	benchmarkEncode(b, &raft.MsgVoteResp{Term: 12, Granted: true})
}

func BenchmarkWireDecodeAppendReq64(b *testing.B) {
	buf, err := AppendMessage(nil, 1, benchAppendReq(64))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		if _, _, err := DecodeMessage(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEntryFrameWAL(b *testing.B) {
	e := &benchAppendReq(1).Entries[0]
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEntry(buf[:0], e)
	}
	b.SetBytes(int64(len(buf)))
}
