package wire

import (
	"raftpaxos/internal/lease"
	"raftpaxos/internal/mencius"
	"raftpaxos/internal/multipaxos"
	"raftpaxos/internal/pql"
	"raftpaxos/internal/protocol"
	"raftpaxos/internal/raft"
	"raftpaxos/internal/raftstar"
	"raftpaxos/internal/rql"
)

// The type-tag table. Tags are wire format: never renumber or reuse one
// (retire it and allocate the next free value instead). The payload of
// each type is its exported fields in declaration order, encoded with the
// package's primitives — the engines' message definitions carry matching
// "wire format" stability comments, and the golden vectors in
// spec_test.go pin every layout byte for byte.
const (
	tagInvalid Tag = 0

	TagRaftVoteReq    Tag = 1
	TagRaftVoteResp   Tag = 2
	TagRaftAppendReq  Tag = 3
	TagRaftAppendResp Tag = 4
	TagRaftForward    Tag = 5

	TagRaftstarVoteReq    Tag = 6
	TagRaftstarVoteResp   Tag = 7
	TagRaftstarAppendReq  Tag = 8
	TagRaftstarAppendResp Tag = 9
	TagRaftstarForward    Tag = 10

	TagPaxosPrepare   Tag = 11
	TagPaxosPrepareOK Tag = 12
	TagPaxosAccept    Tag = 13
	TagPaxosAcceptOK  Tag = 14
	TagPaxosForward   Tag = 15

	TagMenciusPropose       Tag = 16
	TagMenciusProposeOK     Tag = 17
	TagMenciusCoordHB       Tag = 18
	TagMenciusRevokePrep    Tag = 19
	TagMenciusRevokePromise Tag = 20

	TagLeaseGrant    Tag = 21
	TagLeaseGrantAck Tag = 22

	TagRQLReadReq Tag = 23
	TagPQLReadReq Tag = 24

	TagInstallSnapshot     Tag = 25
	TagInstallSnapshotResp Tag = 26
	TagReadForward         Tag = 27
	TagFastAccept          Tag = 28
	TagFastAck             Tag = 29

	// TagClusterReply is reserved for package cluster's MsgReply, which
	// cannot register here (cluster sits above the transport that imports
	// this package); cluster.RegisterMessages binds it.
	TagClusterReply Tag = 32
)

// Shared sub-codecs. Command and Entry are the vocabulary every engine's
// batches are built from; the WAL's entry frames reuse exactly this
// entry layout (storage adds its own length+CRC framing around it).

// AppendCommand appends cmd: ID, Client, Op, Key, Value, Size.
func AppendCommand(b []byte, cmd *protocol.Command) []byte {
	b = AppendUvarint(b, cmd.ID)
	b = AppendVarint(b, int64(cmd.Client))
	b = append(b, byte(cmd.Op))
	b = AppendString(b, cmd.Key)
	b = AppendBytes(b, cmd.Value)
	return AppendVarint(b, int64(cmd.Size))
}

// ReadCommand consumes one command (errors surface via r).
func ReadCommand(r *Reader) protocol.Command {
	var c protocol.Command
	c.ID = r.Uvarint()
	c.Client = protocol.NodeID(r.Varint())
	c.Op = protocol.Op(r.Byte())
	c.Key = r.String()
	c.Value = r.Bytes()
	c.Size = int(r.Varint())
	return c
}

// AppendEntry appends e: Index, Term, Bal, Cmd. This is the one entry
// layout in the system — the transport's append/accept batches and the
// WAL's frame bodies are byte-identical.
func AppendEntry(b []byte, e *protocol.Entry) []byte {
	b = AppendVarint(b, e.Index)
	b = AppendUvarint(b, e.Term)
	b = AppendUvarint(b, e.Bal)
	return AppendCommand(b, &e.Cmd)
}

// ReadEntry consumes one entry (errors surface via r).
func ReadEntry(r *Reader) protocol.Entry {
	var e protocol.Entry
	e.Index = r.Varint()
	e.Term = r.Uvarint()
	e.Bal = r.Uvarint()
	e.Cmd = ReadCommand(r)
	return e
}

// AppendEntries appends a counted entry batch.
func AppendEntries(b []byte, ents []protocol.Entry) []byte {
	b = AppendUvarint(b, uint64(len(ents)))
	for i := range ents {
		b = AppendEntry(b, &ents[i])
	}
	return b
}

// ReadEntries consumes a counted entry batch (nil when empty).
func ReadEntries(r *Reader) []protocol.Entry {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]protocol.Entry, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, ReadEntry(r))
	}
	return out
}

func appendCommands(b []byte, cmds []protocol.Command) []byte {
	b = AppendUvarint(b, uint64(len(cmds)))
	for i := range cmds {
		b = AppendCommand(b, &cmds[i])
	}
	return b
}

func readCommands(r *Reader) []protocol.Command {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]protocol.Command, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, ReadCommand(r))
	}
	return out
}

func appendInt64s(b []byte, vs []int64) []byte {
	b = AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = AppendVarint(b, v)
	}
	return b
}

func readInt64s(r *Reader) []int64 {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]int64, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.Varint())
	}
	return out
}

func appendNodeIDs(b []byte, vs []protocol.NodeID) []byte {
	b = AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = AppendVarint(b, int64(v))
	}
	return b
}

func readNodeIDs(r *Reader) []protocol.NodeID {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]protocol.NodeID, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, protocol.NodeID(r.Varint()))
	}
	return out
}

// registerBuiltin binds every engine message type this package can see.
// cluster.MsgReply registers from package cluster (see TagClusterReply).
func registerBuiltin() {
	// raft: vote request/response, append request/response, forward.
	Register(TagRaftVoteReq, &raft.MsgVoteReq{}, Codec{
		New: func() protocol.Message { return &raft.MsgVoteReq{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*raft.MsgVoteReq)
			b = AppendUvarint(b, m.Term)
			b = AppendVarint(b, m.LastIndex)
			b = AppendUvarint(b, m.LastTerm)
			return AppendVarint(b, m.Commit)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &raft.MsgVoteReq{}
			m.Term = r.Uvarint()
			m.LastIndex = r.Varint()
			m.LastTerm = r.Uvarint()
			m.Commit = r.Varint()
			return m, r.Err()
		},
	})
	Register(TagRaftVoteResp, &raft.MsgVoteResp{}, Codec{
		New: func() protocol.Message { return &raft.MsgVoteResp{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*raft.MsgVoteResp)
			b = AppendUvarint(b, m.Term)
			b = AppendBool(b, m.Granted)
			return AppendEntries(b, m.Extra)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &raft.MsgVoteResp{}
			m.Term = r.Uvarint()
			m.Granted = r.Bool()
			m.Extra = ReadEntries(r)
			return m, r.Err()
		},
	})
	Register(TagRaftAppendReq, &raft.MsgAppendReq{}, Codec{
		New: func() protocol.Message { return &raft.MsgAppendReq{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*raft.MsgAppendReq)
			b = AppendUvarint(b, m.Term)
			b = AppendVarint(b, m.PrevIndex)
			b = AppendUvarint(b, m.PrevTerm)
			b = AppendEntries(b, m.Entries)
			b = AppendVarint(b, m.Commit)
			b = AppendUvarint(b, m.ReadCtx)
			return AppendUvarint(b, m.PrevID)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &raft.MsgAppendReq{}
			m.Term = r.Uvarint()
			m.PrevIndex = r.Varint()
			m.PrevTerm = r.Uvarint()
			m.Entries = ReadEntries(r)
			m.Commit = r.Varint()
			m.ReadCtx = r.Uvarint()
			m.PrevID = r.Uvarint()
			return m, r.Err()
		},
	})
	Register(TagRaftAppendResp, &raft.MsgAppendResp{}, Codec{
		New: func() protocol.Message { return &raft.MsgAppendResp{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*raft.MsgAppendResp)
			b = AppendUvarint(b, m.Term)
			b = AppendBool(b, m.Ok)
			b = AppendVarint(b, m.LastIndex)
			return AppendUvarint(b, m.ReadCtx)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &raft.MsgAppendResp{}
			m.Term = r.Uvarint()
			m.Ok = r.Bool()
			m.LastIndex = r.Varint()
			m.ReadCtx = r.Uvarint()
			return m, r.Err()
		},
	})
	Register(TagRaftForward, &raft.MsgForward{}, Codec{
		New: func() protocol.Message { return &raft.MsgForward{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			return appendCommands(b, msg.(*raft.MsgForward).Cmds)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &raft.MsgForward{Cmds: readCommands(r)}
			return m, r.Err()
		},
	})

	// raftstar: the same five shapes, plus safe-value extras on vote
	// responses and lease holders on append responses.
	Register(TagRaftstarVoteReq, &raftstar.MsgVoteReq{}, Codec{
		New: func() protocol.Message { return &raftstar.MsgVoteReq{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*raftstar.MsgVoteReq)
			b = AppendUvarint(b, m.Term)
			b = AppendVarint(b, m.LastIndex)
			b = AppendUvarint(b, m.LastTerm)
			return AppendVarint(b, m.Commit)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &raftstar.MsgVoteReq{}
			m.Term = r.Uvarint()
			m.LastIndex = r.Varint()
			m.LastTerm = r.Uvarint()
			m.Commit = r.Varint()
			return m, r.Err()
		},
	})
	Register(TagRaftstarVoteResp, &raftstar.MsgVoteResp{}, Codec{
		New: func() protocol.Message { return &raftstar.MsgVoteResp{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*raftstar.MsgVoteResp)
			b = AppendUvarint(b, m.Term)
			b = AppendBool(b, m.Granted)
			b = AppendEntries(b, m.Extra)
			return AppendVarint(b, m.LastIndex)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &raftstar.MsgVoteResp{}
			m.Term = r.Uvarint()
			m.Granted = r.Bool()
			m.Extra = ReadEntries(r)
			m.LastIndex = r.Varint()
			return m, r.Err()
		},
	})
	Register(TagRaftstarAppendReq, &raftstar.MsgAppendReq{}, Codec{
		New: func() protocol.Message { return &raftstar.MsgAppendReq{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*raftstar.MsgAppendReq)
			b = AppendUvarint(b, m.Term)
			b = AppendVarint(b, m.PrevIndex)
			b = AppendUvarint(b, m.PrevTerm)
			b = AppendEntries(b, m.Entries)
			b = AppendVarint(b, m.Commit)
			b = AppendUvarint(b, m.ReadCtx)
			return AppendUvarint(b, m.PrevID)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &raftstar.MsgAppendReq{}
			m.Term = r.Uvarint()
			m.PrevIndex = r.Varint()
			m.PrevTerm = r.Uvarint()
			m.Entries = ReadEntries(r)
			m.Commit = r.Varint()
			m.ReadCtx = r.Uvarint()
			m.PrevID = r.Uvarint()
			return m, r.Err()
		},
	})
	Register(TagRaftstarAppendResp, &raftstar.MsgAppendResp{}, Codec{
		New: func() protocol.Message { return &raftstar.MsgAppendResp{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*raftstar.MsgAppendResp)
			b = AppendUvarint(b, m.Term)
			b = AppendBool(b, m.Ok)
			b = AppendVarint(b, m.LastIndex)
			b = appendNodeIDs(b, m.Holders)
			return AppendUvarint(b, m.ReadCtx)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &raftstar.MsgAppendResp{}
			m.Term = r.Uvarint()
			m.Ok = r.Bool()
			m.LastIndex = r.Varint()
			m.Holders = readNodeIDs(r)
			m.ReadCtx = r.Uvarint()
			return m, r.Err()
		},
	})
	Register(TagRaftstarForward, &raftstar.MsgForward{}, Codec{
		New: func() protocol.Message { return &raftstar.MsgForward{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			return appendCommands(b, msg.(*raftstar.MsgForward).Cmds)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &raftstar.MsgForward{Cmds: readCommands(r)}
			return m, r.Err()
		},
	})

	// multipaxos: prepare/prepareOK, accept/acceptOK, forward. The
	// InstanceInfo sub-codec (Idx, Bal, Cmd, Chosen) appears in both
	// phase-1b and phase-2a batches.
	appendInsts := func(b []byte, insts []multipaxos.InstanceInfo) []byte {
		b = AppendUvarint(b, uint64(len(insts)))
		for i := range insts {
			b = AppendVarint(b, insts[i].Idx)
			b = AppendUvarint(b, insts[i].Bal)
			b = AppendCommand(b, &insts[i].Cmd)
			b = AppendBool(b, insts[i].Chosen)
		}
		return b
	}
	readInsts := func(r *Reader) []multipaxos.InstanceInfo {
		n := r.count()
		if n == 0 {
			return nil
		}
		out := make([]multipaxos.InstanceInfo, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			var inst multipaxos.InstanceInfo
			inst.Idx = r.Varint()
			inst.Bal = r.Uvarint()
			inst.Cmd = ReadCommand(r)
			inst.Chosen = r.Bool()
			out = append(out, inst)
		}
		return out
	}
	Register(TagPaxosPrepare, &multipaxos.MsgPrepare{}, Codec{
		New: func() protocol.Message { return &multipaxos.MsgPrepare{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*multipaxos.MsgPrepare)
			b = AppendUvarint(b, m.Bal)
			return AppendVarint(b, m.Unchosen)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &multipaxos.MsgPrepare{}
			m.Bal = r.Uvarint()
			m.Unchosen = r.Varint()
			return m, r.Err()
		},
	})
	Register(TagPaxosPrepareOK, &multipaxos.MsgPrepareOK{}, Codec{
		New: func() protocol.Message { return &multipaxos.MsgPrepareOK{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*multipaxos.MsgPrepareOK)
			b = AppendUvarint(b, m.Bal)
			b = appendInsts(b, m.Insts)
			return AppendVarint(b, m.Base)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &multipaxos.MsgPrepareOK{}
			m.Bal = r.Uvarint()
			m.Insts = readInsts(r)
			m.Base = r.Varint()
			return m, r.Err()
		},
	})
	Register(TagPaxosAccept, &multipaxos.MsgAccept{}, Codec{
		New: func() protocol.Message { return &multipaxos.MsgAccept{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*multipaxos.MsgAccept)
			b = AppendUvarint(b, m.Bal)
			b = appendInsts(b, m.Insts)
			b = AppendVarint(b, m.ChosenPrefix)
			return AppendUvarint(b, m.ReadCtx)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &multipaxos.MsgAccept{}
			m.Bal = r.Uvarint()
			m.Insts = readInsts(r)
			m.ChosenPrefix = r.Varint()
			m.ReadCtx = r.Uvarint()
			return m, r.Err()
		},
	})
	Register(TagPaxosAcceptOK, &multipaxos.MsgAcceptOK{}, Codec{
		New: func() protocol.Message { return &multipaxos.MsgAcceptOK{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*multipaxos.MsgAcceptOK)
			b = AppendUvarint(b, m.Bal)
			b = appendInt64s(b, m.Idxs)
			b = appendNodeIDs(b, m.Holders)
			b = AppendVarint(b, m.NeedFrom)
			return AppendUvarint(b, m.ReadCtx)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &multipaxos.MsgAcceptOK{}
			m.Bal = r.Uvarint()
			m.Idxs = readInt64s(r)
			m.Holders = readNodeIDs(r)
			m.NeedFrom = r.Varint()
			m.ReadCtx = r.Uvarint()
			return m, r.Err()
		},
	})
	Register(TagPaxosForward, &multipaxos.MsgForward{}, Codec{
		New: func() protocol.Message { return &multipaxos.MsgForward{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			return appendCommands(b, msg.(*multipaxos.MsgForward).Cmds)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &multipaxos.MsgForward{Cmds: readCommands(r)}
			return m, r.Err()
		},
	})

	// mencius: coordinated propose/ack, the barrier/frontier heartbeat,
	// and the revocation pair.
	Register(TagMenciusPropose, &mencius.MsgPropose{}, Codec{
		New: func() protocol.Message { return &mencius.MsgPropose{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*mencius.MsgPropose)
			b = AppendVarint(b, int64(m.Owner))
			b = AppendVarint(b, int64(m.Proposer))
			b = AppendUvarint(b, m.Bal)
			b = AppendUvarint(b, uint64(len(m.Slots)))
			for i := range m.Slots {
				b = AppendVarint(b, m.Slots[i].Slot)
				b = AppendCommand(b, &m.Slots[i].Cmd)
			}
			b = AppendVarint(b, m.Barrier)
			return appendInt64s(b, m.Frontier)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &mencius.MsgPropose{}
			m.Owner = protocol.NodeID(r.Varint())
			m.Proposer = protocol.NodeID(r.Varint())
			m.Bal = r.Uvarint()
			if n := r.count(); n > 0 {
				m.Slots = make([]mencius.SlotCmd, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					var sc mencius.SlotCmd
					sc.Slot = r.Varint()
					sc.Cmd = ReadCommand(r)
					m.Slots = append(m.Slots, sc)
				}
			}
			m.Barrier = r.Varint()
			m.Frontier = readInt64s(r)
			return m, r.Err()
		},
	})
	Register(TagMenciusProposeOK, &mencius.MsgProposeOK{}, Codec{
		New: func() protocol.Message { return &mencius.MsgProposeOK{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*mencius.MsgProposeOK)
			b = AppendUvarint(b, m.Bal)
			b = appendInt64s(b, m.Slots)
			b = AppendVarint(b, m.Barrier)
			return appendInt64s(b, m.Frontier)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &mencius.MsgProposeOK{}
			m.Bal = r.Uvarint()
			m.Slots = readInt64s(r)
			m.Barrier = r.Varint()
			m.Frontier = readInt64s(r)
			return m, r.Err()
		},
	})
	Register(TagMenciusCoordHB, &mencius.MsgCoordHB{}, Codec{
		New: func() protocol.Message { return &mencius.MsgCoordHB{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*mencius.MsgCoordHB)
			b = AppendVarint(b, m.Barrier)
			return appendInt64s(b, m.Frontier)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &mencius.MsgCoordHB{}
			m.Barrier = r.Varint()
			m.Frontier = readInt64s(r)
			return m, r.Err()
		},
	})
	Register(TagMenciusRevokePrep, &mencius.MsgRevokePrep{}, Codec{
		New: func() protocol.Message { return &mencius.MsgRevokePrep{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*mencius.MsgRevokePrep)
			b = AppendVarint(b, int64(m.Owner))
			b = AppendUvarint(b, m.Bal)
			return AppendVarint(b, m.From)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &mencius.MsgRevokePrep{}
			m.Owner = protocol.NodeID(r.Varint())
			m.Bal = r.Uvarint()
			m.From = r.Varint()
			return m, r.Err()
		},
	})
	Register(TagMenciusRevokePromise, &mencius.MsgRevokePromise{}, Codec{
		New: func() protocol.Message { return &mencius.MsgRevokePromise{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*mencius.MsgRevokePromise)
			b = AppendVarint(b, int64(m.Owner))
			b = AppendUvarint(b, m.Bal)
			b = AppendUvarint(b, uint64(len(m.Props)))
			for i := range m.Props {
				b = AppendVarint(b, m.Props[i].Slot)
				b = AppendUvarint(b, m.Props[i].Bal)
				b = AppendCommand(b, &m.Props[i].Cmd)
			}
			return AppendVarint(b, m.MaxSlot)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &mencius.MsgRevokePromise{}
			m.Owner = protocol.NodeID(r.Varint())
			m.Bal = r.Uvarint()
			if n := r.count(); n > 0 {
				m.Props = make([]mencius.SlotProp, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					var sp mencius.SlotProp
					sp.Slot = r.Varint()
					sp.Bal = r.Uvarint()
					sp.Cmd = ReadCommand(r)
					m.Props = append(m.Props, sp)
				}
			}
			m.MaxSlot = r.Varint()
			return m, r.Err()
		},
	})

	// lease: grant and acknowledgement.
	Register(TagLeaseGrant, &lease.MsgGrant{}, Codec{
		New: func() protocol.Message { return &lease.MsgGrant{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*lease.MsgGrant)
			b = AppendVarint(b, int64(m.Duration))
			return AppendUvarint(b, m.Seq)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &lease.MsgGrant{}
			m.Duration = int(r.Varint())
			m.Seq = r.Uvarint()
			return m, r.Err()
		},
	})
	Register(TagLeaseGrantAck, &lease.MsgGrantAck{}, Codec{
		New: func() protocol.Message { return &lease.MsgGrantAck{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			return AppendUvarint(b, msg.(*lease.MsgGrantAck).Seq)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &lease.MsgGrantAck{Seq: r.Uvarint()}
			return m, r.Err()
		},
	})

	// rql / pql: read forwarding of a single command.
	Register(TagRQLReadReq, &rql.MsgReadReq{}, Codec{
		New: func() protocol.Message { return &rql.MsgReadReq{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*rql.MsgReadReq)
			return AppendCommand(b, &m.Cmd)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &rql.MsgReadReq{Cmd: ReadCommand(r)}
			return m, r.Err()
		},
	})
	Register(TagPQLReadReq, &pql.MsgReadReq{}, Codec{
		New: func() protocol.Message { return &pql.MsgReadReq{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*pql.MsgReadReq)
			return AppendCommand(b, &m.Cmd)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &pql.MsgReadReq{Cmd: ReadCommand(r)}
			return m, r.Err()
		},
	})

	// protocol layer: snapshot transfer and read forwarding, shared by
	// every engine.
	Register(TagInstallSnapshot, &protocol.MsgInstallSnapshot{}, Codec{
		New: func() protocol.Message { return &protocol.MsgInstallSnapshot{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*protocol.MsgInstallSnapshot)
			b = AppendUvarint(b, m.Term)
			b = AppendVarint(b, m.Index)
			b = AppendUvarint(b, m.SnapTerm)
			b = AppendVarint(b, m.Offset)
			b = AppendBytes(b, m.Data)
			return AppendBool(b, m.Done)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &protocol.MsgInstallSnapshot{}
			m.Term = r.Uvarint()
			m.Index = r.Varint()
			m.SnapTerm = r.Uvarint()
			m.Offset = r.Varint()
			m.Data = r.Bytes()
			m.Done = r.Bool()
			return m, r.Err()
		},
	})
	Register(TagInstallSnapshotResp, &protocol.MsgInstallSnapshotResp{}, Codec{
		New: func() protocol.Message { return &protocol.MsgInstallSnapshotResp{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*protocol.MsgInstallSnapshotResp)
			b = AppendUvarint(b, m.Term)
			b = AppendVarint(b, m.Index)
			b = AppendVarint(b, m.NextOffset)
			return AppendBool(b, m.Installed)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &protocol.MsgInstallSnapshotResp{}
			m.Term = r.Uvarint()
			m.Index = r.Varint()
			m.NextOffset = r.Varint()
			m.Installed = r.Bool()
			return m, r.Err()
		},
	})
	Register(TagReadForward, &protocol.MsgReadForward{}, Codec{
		New: func() protocol.Message { return &protocol.MsgReadForward{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			return appendCommands(b, msg.(*protocol.MsgReadForward).Cmds)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &protocol.MsgReadForward{Cmds: readCommands(r)}
			return m, r.Err()
		},
	})
	Register(TagFastAccept, &protocol.MsgFastAccept{}, Codec{
		New: func() protocol.Message { return &protocol.MsgFastAccept{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			return appendCommands(b, msg.(*protocol.MsgFastAccept).Cmds)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &protocol.MsgFastAccept{Cmds: readCommands(r)}
			return m, r.Err()
		},
	})
	Register(TagFastAck, &protocol.MsgFastAck{}, Codec{
		New: func() protocol.Message { return &protocol.MsgFastAck{} },
		Append: func(b []byte, msg protocol.Message) []byte {
			m := msg.(*protocol.MsgFastAck)
			b = AppendUvarint(b, m.Term)
			b = AppendVarint(b, m.Base)
			b = AppendUvarint(b, uint64(len(m.IDs)))
			for _, id := range m.IDs {
				b = AppendUvarint(b, id)
			}
			return AppendBool(b, m.Leader)
		},
		Decode: func(r *Reader) (protocol.Message, error) {
			m := &protocol.MsgFastAck{}
			m.Term = r.Uvarint()
			m.Base = r.Varint()
			if n := r.count(); n > 0 {
				m.IDs = make([]uint64, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					m.IDs = append(m.IDs, r.Uvarint())
				}
			}
			m.Leader = r.Bool()
			return m, r.Err()
		},
	})
}
