package wire

import (
	"encoding/hex"
	"flag"
	"fmt"
	"testing"

	"raftpaxos/internal/lease"
	"raftpaxos/internal/mencius"
	"raftpaxos/internal/multipaxos"
	"raftpaxos/internal/pql"
	"raftpaxos/internal/protocol"
	"raftpaxos/internal/raft"
	"raftpaxos/internal/raftstar"
	"raftpaxos/internal/rql"
)

// specVectors pins the exact bytes AppendMessage produces for one fixed
// instance of every registered type. These are golden: a mismatch means
// the wire format changed, which breaks mixed-version clusters — bump
// wireVersion in the transport handshake and update the vector, never
// silently reshape a payload.
//
// Record layout: varint(from) | tag byte | payload (fields in declaration
// order; see codec.go for the per-type field list).
var genSpec = flag.Bool("gen-spec", false, "print the spec-vector golden column instead of checking it")

var specCmd = protocol.Command{ID: 7, Client: 2, Op: protocol.OpPut, Key: "k1", Value: []byte("v1"), Size: 11}

var specEntry = protocol.Entry{Index: 9, Term: 4, Bal: 4, Cmd: specCmd}

var specVectors = []struct {
	msg protocol.Message
	hex string
}{
	{&raft.MsgVoteReq{Term: 5, LastIndex: 10, LastTerm: 4, Commit: 8}, "060105140410"},
	{&raft.MsgVoteResp{Term: 5, Granted: true, Extra: []protocol.Entry{specEntry}}, "0602050101120404070401026b3102763116"},
	{&raft.MsgAppendReq{Term: 4, PrevIndex: 8, PrevTerm: 4, Entries: []protocol.Entry{specEntry}, Commit: 8, ReadCtx: 3, PrevID: 7}, "060304100401120404070401026b3102763116100307"},
	{&raft.MsgAppendResp{Term: 4, Ok: true, LastIndex: 9, ReadCtx: 3}, "060404011203"},
	{&raft.MsgForward{Cmds: []protocol.Command{specCmd}}, "060501070401026b3102763116"},
	{&raftstar.MsgVoteReq{Term: 5, LastIndex: 10, LastTerm: 4, Commit: 8}, "060605140410"},
	{&raftstar.MsgVoteResp{Term: 5, Granted: true, Extra: []protocol.Entry{specEntry}, LastIndex: 9}, "0607050101120404070401026b310276311612"},
	{&raftstar.MsgAppendReq{Term: 4, PrevIndex: 8, PrevTerm: 4, Entries: []protocol.Entry{specEntry}, Commit: 8, ReadCtx: 3, PrevID: 7}, "060804100401120404070401026b3102763116100307"},
	{&raftstar.MsgAppendResp{Term: 4, Ok: true, LastIndex: 9, Holders: []protocol.NodeID{0, 2}, ReadCtx: 3}, "060904011202000403"},
	{&raftstar.MsgForward{Cmds: []protocol.Command{specCmd}}, "060a01070401026b3102763116"},
	{&multipaxos.MsgPrepare{Bal: 6, Unchosen: 3}, "060b0606"},
	{&multipaxos.MsgPrepareOK{Bal: 6, Insts: []multipaxos.InstanceInfo{{Idx: 3, Bal: 5, Cmd: specCmd, Chosen: true}}, Base: 2}, "060c06010605070401026b31027631160104"},
	{&multipaxos.MsgAccept{Bal: 6, Insts: []multipaxos.InstanceInfo{{Idx: 4, Bal: 6, Cmd: specCmd}}, ChosenPrefix: 3, ReadCtx: 3}, "060d06010806070401026b3102763116000603"},
	{&multipaxos.MsgAcceptOK{Bal: 6, Idxs: []int64{4}, Holders: []protocol.NodeID{1}, NeedFrom: 0, ReadCtx: 3}, "060e06010801020003"},
	{&multipaxos.MsgForward{Cmds: []protocol.Command{specCmd}}, "060f01070401026b3102763116"},
	{&mencius.MsgPropose{Owner: 1, Proposer: 1, Bal: 0, Slots: []mencius.SlotCmd{{Slot: 4, Cmd: specCmd}}, Barrier: 2, Frontier: []int64{3, 1, 4}}, "06100202000108070401026b31027631160403060208"},
	{&mencius.MsgProposeOK{Bal: 0, Slots: []int64{4}, Barrier: 2, Frontier: []int64{3, 1, 4}}, "06110001080403060208"},
	{&mencius.MsgCoordHB{Barrier: 2, Frontier: []int64{3, 1, 4}}, "06120403060208"},
	{&mencius.MsgRevokePrep{Owner: 2, Bal: 7, From: 5}, "061304070a"},
	{&mencius.MsgRevokePromise{Owner: 2, Bal: 7, Props: []mencius.SlotProp{{Slot: 5, Bal: 6, Cmd: specCmd}}, MaxSlot: 8}, "06140407010a06070401026b310276311610"},
	{&lease.MsgGrant{Duration: 40, Seq: 12}, "0615500c"},
	{&lease.MsgGrantAck{Seq: 12}, "06160c"},
	{&rql.MsgReadReq{Cmd: specCmd}, "0617070401026b3102763116"},
	{&pql.MsgReadReq{Cmd: specCmd}, "0618070401026b3102763116"},
	{&protocol.MsgInstallSnapshot{Term: 4, Index: 9, SnapTerm: 4, Offset: 512, Data: []byte{0xAA, 0xBB}, Done: true}, "0619041204800802aabb01"},
	{&protocol.MsgInstallSnapshotResp{Term: 4, Index: 9, NextOffset: 514, Installed: false}, "061a0412840800"},
	{&protocol.MsgReadForward{Cmds: []protocol.Command{specCmd}}, "061b01070401026b3102763116"},
	{&protocol.MsgFastAccept{Cmds: []protocol.Command{specCmd}}, "061c01070401026b3102763116"},
	{&protocol.MsgFastAck{Term: 4, Base: 9, IDs: []uint64{7}, Leader: true}, "061d0412010701"},
}

func TestSpecVectors(t *testing.T) {
	if len(specVectors) != builtinTypeCount {
		t.Fatalf("spec table has %d vectors, registry has %d types", len(specVectors), builtinTypeCount)
	}
	for _, tc := range specVectors {
		buf, err := AppendMessage(nil, 3, tc.msg)
		if err != nil {
			t.Fatalf("%T: encode: %v", tc.msg, err)
		}
		if got := hex.EncodeToString(buf); got != tc.hex {
			t.Errorf("%T: wire bytes changed\n got  %q\n want %q\n(format change: bump transport wireVersion and update this vector)", tc.msg, got, tc.hex)
		}
	}
}

// TestGenSpecVectors regenerates the golden column; run with
//
//	go test ./internal/wire -run GenSpec -v -gen-spec
//
// and paste the output when a deliberate format change bumps wireVersion.
func TestGenSpecVectors(t *testing.T) {
	if !*genSpec {
		t.Skip("pass -gen-spec to print the golden vector column")
	}
	for _, tc := range specVectors {
		buf, err := AppendMessage(nil, 3, tc.msg)
		if err != nil {
			t.Fatalf("%T: %v", tc.msg, err)
		}
		fmt.Printf("%T: %q\n", tc.msg, hex.EncodeToString(buf))
	}
}
