package wire

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
)

// TestGobDifferential proves the migration off gob was lossless: for every
// registered message type, a randomized instance decoded through gob and
// the same instance decoded through the binary codec produce identical
// structs. (gob, like this codec, canonicalizes empty slices to nil, so
// the nil-producing generator keeps the comparison exact.)
func TestGobDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, e := range registered() {
		name := e.typ.String()
		for trial := 0; trial < 50; trial++ {
			msg := e.codec.New()
			fillRandom(rng, reflect.ValueOf(msg), 0)

			// Path A: gob.
			var gb bytes.Buffer
			if err := gob.NewEncoder(&gb).Encode(msg); err != nil {
				t.Fatalf("%s: gob encode: %v", name, err)
			}
			viaGob := e.codec.New()
			if err := gob.NewDecoder(&gb).Decode(viaGob); err != nil {
				t.Fatalf("%s: gob decode: %v", name, err)
			}

			// Path B: wire.
			buf, err := AppendMessage(nil, 1, msg)
			if err != nil {
				t.Fatalf("%s: wire encode: %v", name, err)
			}
			_, viaWire, err := DecodeMessage(NewReader(buf))
			if err != nil {
				t.Fatalf("%s: wire decode: %v", name, err)
			}

			if !reflect.DeepEqual(viaGob, viaWire) {
				t.Fatalf("%s trial %d: gob and wire disagree:\n gob  %#v\n wire %#v", name, trial, viaGob, viaWire)
			}
		}
	}
}
