// Package wire is the hand-rolled binary codec for every message the TCP
// transport ships and for the WAL's entry frames — the hot-path
// replacement for encoding/gob. Like internal/snappy it is
// dependency-free and spec-vector tested: the byte layout of every
// message type is pinned by golden vectors, so an accidental format
// change fails a test instead of corrupting a cluster.
//
// # Encoding primitives
//
// Everything is built from four primitives, all little-endian-free and
// self-delimiting:
//
//   - uvarint: unsigned LEB128, as in encoding/binary (1 byte for < 128).
//   - varint: zigzag-folded uvarint for signed values, so small negatives
//     (protocol.None = -1) stay 1 byte.
//   - byte: booleans (0/1), operation codes, type tags.
//   - bytes/string: uvarint length followed by the raw payload.
//
// Slices encode as a uvarint element count followed by the elements.
// Empty byte slices and strings decode as nil/"" (length 0).
//
// # Messages on the wire
//
// A message record is
//
//	varint(from) | tag byte | payload
//
// where the tag identifies the concrete type (see the Tag constants) and
// the payload is the type's fixed field sequence. Payloads are not
// length-prefixed: every codec consumes exactly the fields it wrote, and
// the enclosing transport frame delimits the record batch.
//
// Encoding is allocation-free in steady state: every Append* helper
// appends to a caller-owned buffer that amortizes to its high-water mark.
// Decoding allocates only what the decoded message must own (engines
// retain messages, so keys, values and slices are copied out of the
// transport's pooled read buffers).
package wire

import (
	"errors"
	"fmt"
)

// ErrCorrupt is returned when a buffer violates the wire format
// (truncated field, over-long varint, or trailing garbage).
var ErrCorrupt = errors.New("wire: corrupt input")

// AppendUvarint appends v as an unsigned LEB128 varint.
func AppendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// AppendVarint appends v zigzag-folded, so small negative values stay
// small on the wire.
func AppendVarint(b []byte, v int64) []byte {
	return AppendUvarint(b, uint64(v)<<1^uint64(v>>63))
}

// AppendBool appends v as one byte (0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendBytes appends a uvarint length prefix followed by v.
func AppendBytes(b, v []byte) []byte {
	b = AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// AppendString appends a uvarint length prefix followed by v's bytes.
func AppendString(b []byte, v string) []byte {
	b = AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// Reader decodes the primitives back out of a buffer. Methods record the
// first error and return zero values after it, so a decode is one linear
// pass with a single Err check at the end (or per message via
// DecodeMessage). The buffer is borrowed, not owned: Bytes and String
// copy, because transport readers recycle their frame buffers.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader positioned at the start of buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset repoints the reader at buf, clearing any error (for reader
// reuse across frames).
func (r *Reader) Reset(buf []byte) { r.buf, r.off, r.err = buf, 0, nil }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Len reports the bytes not yet consumed.
func (r *Reader) Len() int { return len(r.buf) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrCorrupt
	}
}

// Byte consumes one byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool consumes one byte and requires it to be 0 or 1.
func (r *Reader) Bool() bool {
	b := r.Byte()
	if b > 1 {
		r.fail()
		return false
	}
	return b == 1
}

// Uvarint consumes an unsigned LEB128 varint (at most 10 bytes).
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.off >= len(r.buf) {
			r.fail()
			return 0
		}
		b := r.buf[r.off]
		r.off++
		if shift == 63 && b > 1 {
			r.fail() // overflows uint64
			return 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
	}
	r.fail()
	return 0
}

// Varint consumes a zigzag-folded varint.
func (r *Reader) Varint() int64 {
	u := r.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Bytes consumes a length-prefixed byte slice, copying it out of the
// borrowed buffer. Length 0 decodes as nil.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += int(n)
	return out
}

// String consumes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return ""
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// count consumes a uvarint slice-element count and sanity-bounds it
// against the remaining input (every element costs at least one byte), so
// a corrupt count cannot force a giant allocation.
func (r *Reader) count() int {
	n := r.Uvarint()
	if n > uint64(len(r.buf)-r.off) {
		r.fail()
		return 0
	}
	return int(n)
}

// Done returns the reader's error state, failing if the buffer was not
// fully consumed — trailing bytes mean the writer and reader disagree
// about the format.
func (r *Reader) Done() error {
	if r.err == nil && r.off != len(r.buf) {
		r.err = fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.off)
	}
	return r.err
}
