package wire

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"raftpaxos/internal/protocol"
)

// Tag is the 1-byte wire type tag that replaces gob's self-describing
// type streams. Tags are part of the wire format: once assigned, a tag's
// meaning never changes (retire tags, never reuse them). The full table
// lives in codec.go next to the codecs; tags 1–31 are claimed by the
// packages this one imports, 32+ are for layers above (package cluster
// registers its client-reply type at TagClusterReply).
type Tag byte

// Codec encodes and decodes one concrete message type.
type Codec struct {
	// New returns a zero message of the codec's concrete type (used by
	// tests to enumerate the registry; decoding goes through Decode).
	New func() protocol.Message
	// Append encodes msg onto buf and returns the extended buffer. It
	// must not allocate beyond growing buf.
	Append func(buf []byte, msg protocol.Message) []byte
	// Decode reads exactly the fields Append wrote and returns the
	// message. The returned message owns all its memory (nothing may
	// alias the reader's buffer).
	Decode func(r *Reader) (protocol.Message, error)
}

type regEntry struct {
	tag   Tag
	typ   reflect.Type
	codec Codec
}

// registry is an immutable snapshot: Register swaps a copy in, so the
// encode/decode hot paths read it with one atomic load and no lock.
type registry struct {
	byType map[reflect.Type]*regEntry
	byTag  [256]*regEntry
}

var (
	regMu  sync.Mutex
	curReg atomic.Pointer[registry]
)

func init() {
	r := &registry{byType: map[reflect.Type]*regEntry{}}
	curReg.Store(r)
	registerBuiltin()
}

// Register binds tag to the concrete type of proto with its codec.
// Re-registering the same type at the same tag is a no-op (packages may
// register from multiple call sites); binding a tag or type twice with
// conflicting halves panics — that is a wire-format bug, and failing at
// startup beats corrupting a stream.
func Register(tag Tag, proto protocol.Message, c Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	typ := reflect.TypeOf(proto)
	old := curReg.Load()
	if e := old.byTag[tag]; e != nil {
		if e.typ == typ {
			return
		}
		panic(fmt.Sprintf("wire: tag %d already bound to %v, cannot rebind to %v", tag, e.typ, typ))
	}
	if e := old.byType[typ]; e != nil {
		panic(fmt.Sprintf("wire: type %v already bound to tag %d, cannot rebind to %d", typ, e.tag, tag))
	}
	next := &registry{byType: make(map[reflect.Type]*regEntry, len(old.byType)+1)}
	for t, e := range old.byType {
		next.byType[t] = e
	}
	next.byTag = old.byTag
	e := &regEntry{tag: tag, typ: typ, codec: c}
	next.byType[typ] = e
	next.byTag[tag] = e
	curReg.Store(next)
}

// AppendMessage encodes one routed message record — varint(from), tag,
// payload — onto buf. Allocation-free in steady state: the only growth is
// buf itself.
func AppendMessage(buf []byte, from protocol.NodeID, msg protocol.Message) ([]byte, error) {
	e := curReg.Load().byType[reflect.TypeOf(msg)]
	if e == nil {
		return buf, fmt.Errorf("wire: unregistered message type %T", msg)
	}
	buf = AppendVarint(buf, int64(from))
	buf = append(buf, byte(e.tag))
	return e.codec.Append(buf, msg), nil
}

// DecodeMessage consumes one message record from r.
func DecodeMessage(r *Reader) (protocol.NodeID, protocol.Message, error) {
	from := protocol.NodeID(r.Varint())
	tag := Tag(r.Byte())
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	e := curReg.Load().byTag[tag]
	if e == nil {
		return 0, nil, fmt.Errorf("wire: unknown type tag %d", tag)
	}
	msg, err := e.codec.Decode(r)
	if err != nil {
		return 0, nil, err
	}
	return from, msg, nil
}

// registered returns the current registry entries, for tests that sweep
// every type (round-trip, differential, spec coverage).
func registered() []*regEntry {
	reg := curReg.Load()
	out := make([]*regEntry, 0, len(reg.byType))
	for _, e := range reg.byType {
		out = append(out, e)
	}
	return out
}
