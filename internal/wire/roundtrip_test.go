package wire

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"raftpaxos/internal/mencius"
	"raftpaxos/internal/multipaxos"
	"raftpaxos/internal/protocol"
	"raftpaxos/internal/raft"
	"raftpaxos/internal/raftstar"
)

// builtinTypeCount pins how many message types the built-in registry
// carries: adding an engine message without registering a codec (or
// registering one twice) fails here before it fails on a live wire.
const builtinTypeCount = 29

func TestRegistryCoversAllBuiltinTypes(t *testing.T) {
	if n := len(registered()); n != builtinTypeCount {
		t.Fatalf("registry has %d built-in types, want %d — update the codec table AND the spec vectors", n, builtinTypeCount)
	}
}

// fillRandom populates every exported field of a message struct with
// random values, recursing through slices and nested structs. It is the
// generator for the round-trip and gob-differential property tests; any
// new field an engine adds to a message is picked up automatically.
func fillRandom(rng *rand.Rand, v reflect.Value, depth int) {
	switch v.Kind() {
	case reflect.Pointer:
		fillRandom(rng, v.Elem(), depth)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).IsExported() {
				fillRandom(rng, v.Field(i), depth)
			}
		}
	case reflect.Bool:
		v.SetBool(rng.Intn(2) == 1)
	case reflect.Uint8:
		v.SetUint(uint64(rng.Intn(4)))
	case reflect.Uint64, reflect.Uint, reflect.Uint32:
		v.SetUint(randUint(rng))
	case reflect.Int64, reflect.Int, reflect.Int32:
		v.SetInt(randInt(rng))
	case reflect.String:
		v.SetString(randString(rng))
	case reflect.Slice:
		n := rng.Intn(4)
		if depth > 2 {
			n = 0
		}
		if n == 0 {
			return // nil slice: the codec's canonical empty form
		}
		s := reflect.MakeSlice(v.Type(), n, n)
		for i := 0; i < n; i++ {
			fillRandom(rng, s.Index(i), depth+1)
		}
		v.Set(s)
	default:
		panic("fillRandom: unhandled kind " + v.Kind().String())
	}
}

// randUint mixes magnitudes so every varint width gets exercised.
func randUint(rng *rand.Rand) uint64 {
	switch rng.Intn(4) {
	case 0:
		return uint64(rng.Intn(2))
	case 1:
		return uint64(rng.Intn(1 << 14))
	case 2:
		return rng.Uint64() >> uint(rng.Intn(64))
	default:
		return math.MaxUint64
	}
}

func randInt(rng *rand.Rand) int64 {
	switch rng.Intn(5) {
	case 0:
		return -1 // protocol.None
	case 1:
		return int64(rng.Intn(1 << 10))
	case 2:
		return math.MaxInt64
	case 3:
		return math.MinInt64
	default:
		return int64(rng.Uint64())
	}
}

func randString(rng *rand.Rand) string {
	const alphabet = "abcdefghijklmnop-0123456789"
	n := rng.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// TestRoundTripAllTypes encodes and decodes randomized instances of every
// registered message type and requires exact structural equality — the
// core property the codec must hold.
func TestRoundTripAllTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, e := range registered() {
		name := e.typ.String()
		for trial := 0; trial < 200; trial++ {
			msg := e.codec.New()
			fillRandom(rng, reflect.ValueOf(msg), 0)
			from := protocol.NodeID(rng.Intn(9) - 1)

			buf, err := AppendMessage(nil, from, msg)
			if err != nil {
				t.Fatalf("%s: encode: %v", name, err)
			}
			r := NewReader(buf)
			gotFrom, got, err := DecodeMessage(r)
			if err != nil {
				t.Fatalf("%s trial %d: decode: %v", name, trial, err)
			}
			if err := r.Done(); err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
			if gotFrom != from {
				t.Fatalf("%s: from = %d, want %d", name, gotFrom, from)
			}
			if !reflect.DeepEqual(got, msg) {
				t.Fatalf("%s trial %d: round-trip mismatch:\n got %#v\nwant %#v", name, trial, got, msg)
			}
		}
	}
}

// TestRoundTripEdgeValues pins the boundary cases the random sweep might
// miss: empty batches, contiguity filler entries, extreme varints, and
// nil-vs-absent payloads.
func TestRoundTripEdgeValues(t *testing.T) {
	msgs := []protocol.Message{
		&raft.MsgAppendReq{},                              // heartbeat: all zeros, no entries
		&raft.MsgAppendReq{Entries: []protocol.Entry{{}}}, // one filler entry (Bal==0, Op==0)
		&raftstar.MsgVoteResp{Term: math.MaxUint64, Granted: true, LastIndex: math.MaxInt64},
		&raftstar.MsgAppendResp{LastIndex: math.MinInt64, Holders: []protocol.NodeID{protocol.None, 0, 127}},
		&multipaxos.MsgAcceptOK{Idxs: []int64{0, -1, math.MaxInt64, math.MinInt64}},
		&multipaxos.MsgPrepareOK{Insts: []multipaxos.InstanceInfo{{Idx: 1, Bal: math.MaxUint64, Chosen: true}}},
		&mencius.MsgPropose{Owner: protocol.None, Proposer: 2, Slots: []mencius.SlotCmd{{Slot: 5}}},
		&mencius.MsgCoordHB{Barrier: -1, Frontier: []int64{}}, // empty-but-non-nil flattens to nil
		&protocol.MsgInstallSnapshot{Data: []byte{}, Done: true},
		&protocol.MsgReadForward{Cmds: []protocol.Command{{Op: protocol.OpGet, Key: "", Value: nil}}},
		&raft.MsgForward{Cmds: []protocol.Command{{ID: math.MaxUint64, Client: protocol.None, Op: protocol.OpPut, Key: "k", Value: []byte{0}, Size: -1}}},
		&protocol.MsgFastAccept{}, // empty fast round: no commands
		&protocol.MsgFastAccept{Cmds: []protocol.Command{{ID: math.MaxUint64, Client: protocol.None, Op: protocol.OpPut, Key: "hot", Value: []byte{}}}},
		&protocol.MsgFastAck{Term: math.MaxUint64, Base: math.MinInt64, IDs: []uint64{0, math.MaxUint64}, Leader: true},
		&protocol.MsgFastAck{}, // ack with no slots: pure term/leader signal
	}
	for _, msg := range msgs {
		buf, err := AppendMessage(nil, protocol.None, msg)
		if err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		r := NewReader(buf)
		_, got, err := DecodeMessage(r)
		if err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if err := r.Done(); err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		// Empty-but-non-nil slices canonicalize to nil on decode; apply
		// the same flattening to the expectation before comparing.
		want := canonicalize(msg)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%T mismatch:\n got %#v\nwant %#v", msg, got, want)
		}
	}
}

// canonicalize returns a deep copy of msg with zero-length slices
// replaced by nil (the codec's canonical decode form).
func canonicalize(msg protocol.Message) protocol.Message {
	out := reflect.New(reflect.TypeOf(msg).Elem())
	out.Elem().Set(reflect.ValueOf(msg).Elem())
	flattenEmpty(out.Elem())
	return out.Interface().(protocol.Message)
}

func flattenEmpty(v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).IsExported() {
				flattenEmpty(v.Field(i))
			}
		}
	case reflect.Slice:
		if v.Len() == 0 {
			v.Set(reflect.Zero(v.Type()))
			return
		}
		for i := 0; i < v.Len(); i++ {
			flattenEmpty(v.Index(i))
		}
	}
}

// TestEntrySubCodec round-trips the shared entry layout the WAL frames
// reuse, including the filler-entry form compaction relies on.
func TestEntrySubCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		var e protocol.Entry
		fillRandom(rng, reflect.ValueOf(&e), 0)
		if trial == 0 {
			e = protocol.Entry{} // filler: restores as "no proposal accepted"
		}
		buf := AppendEntry(nil, &e)
		r := NewReader(buf)
		got := ReadEntry(r)
		if err := r.Done(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("trial %d: entry mismatch:\n got %#v\nwant %#v", trial, got, e)
		}
		if e.IsFiller() != got.IsFiller() {
			t.Fatalf("filler bit changed across the codec")
		}
	}
}

// TestUnknownTagFailsLoudly pins the failure mode for a registry skew
// between peers: decoding must error, not misparse.
func TestUnknownTagFailsLoudly(t *testing.T) {
	buf := AppendVarint(nil, 3) // from
	buf = append(buf, 0xEE)     // tag nobody registered
	if _, _, err := DecodeMessage(NewReader(buf)); err == nil {
		t.Fatal("unknown tag decoded without error")
	}
}

// TestVarintBounds pins the primitive edge behavior: max-width varints
// round-trip, over-long ones are rejected.
func TestVarintBounds(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1 << 20, math.MaxUint64} {
		r := NewReader(AppendUvarint(nil, v))
		if got := r.Uvarint(); got != v || r.Done() != nil {
			t.Fatalf("uvarint %d round-tripped to %d (err %v)", v, got, r.Err())
		}
	}
	for _, v := range []int64{0, -1, 1, math.MaxInt64, math.MinInt64} {
		r := NewReader(AppendVarint(nil, v))
		if got := r.Varint(); got != v || r.Done() != nil {
			t.Fatalf("varint %d round-tripped to %d (err %v)", v, got, r.Err())
		}
	}
	// 11 continuation bytes: longer than any uint64 varint can be.
	r := NewReader([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	if r.Uvarint(); r.Err() == nil {
		t.Fatal("over-long varint accepted")
	}
}
