package wire

import (
	"math"
	"reflect"
	"testing"

	"raftpaxos/internal/mencius"
	"raftpaxos/internal/multipaxos"
	"raftpaxos/internal/protocol"
	"raftpaxos/internal/raft"
	"raftpaxos/internal/raftstar"
)

// fuzzSeeds returns one well-formed encoded record per interesting shape,
// so the fuzzer starts from valid frames and mutates toward corruption.
func fuzzSeeds(tb testing.TB) [][]byte {
	msgs := []protocol.Message{
		&raft.MsgVoteReq{Term: 3, LastIndex: 9, LastTerm: 2},
		&raft.MsgAppendReq{Term: 5, PrevIndex: 4, PrevTerm: 5,
			Entries: []protocol.Entry{{Index: 5, Term: 5, Cmd: protocol.Command{ID: 1, Client: 2, Op: protocol.OpPut, Key: "k", Value: []byte("v")}}},
			Commit:  4},
		&raftstar.MsgAppendResp{Term: 2, Ok: true, LastIndex: 7, Holders: []protocol.NodeID{0, 1}},
		&multipaxos.MsgPrepareOK{Bal: 8, Insts: []multipaxos.InstanceInfo{{Idx: 3, Bal: 8, Chosen: true}}},
		&mencius.MsgPropose{Owner: 1, Proposer: 1, Bal: 1, Slots: []mencius.SlotCmd{{Slot: 4}}, Barrier: 2, Frontier: []int64{1, 2, 3}},
		&protocol.MsgInstallSnapshot{Term: 9, Index: 100, SnapTerm: 8, Data: []byte{1, 2, 3}, Done: true},
		&protocol.MsgReadForward{Cmds: []protocol.Command{{Op: protocol.OpGet, Key: "x"}}},
		&raft.MsgVoteResp{Term: math.MaxUint64, Granted: true},
		&protocol.MsgFastAccept{Cmds: []protocol.Command{
			{ID: 3, Client: 5, Op: protocol.OpPut, Key: "hot", Value: []byte("w")}}},
		&protocol.MsgFastAck{Term: 6, Base: 11, IDs: []uint64{3, math.MaxUint64}, Leader: true},
	}
	var seeds [][]byte
	for _, m := range msgs {
		buf, err := AppendMessage(nil, 2, m)
		if err != nil {
			tb.Fatalf("%T: %v", m, err)
		}
		seeds = append(seeds, buf)
	}
	return seeds
}

// FuzzDecodeMessage feeds arbitrary bytes through the frame-body decode
// loop the TCP reader runs. The invariants: never panic, never allocate
// absurdly, and anything that decodes cleanly must re-encode and decode
// back to the same value (decode is a partial inverse of encode even on
// non-canonical input).
func FuzzDecodeMessage(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	// Hand-built corruptions: truncated varint, unknown tag, huge count.
	f.Add([]byte{0x02})
	f.Add([]byte{0x02, 0xEE})
	f.Add([]byte{0x02, 0x03, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		for r.Len() > 0 {
			_, msg, err := DecodeMessage(r)
			if err != nil {
				return // corrupt input must error, and it did
			}
			// Round-trip what decoded: encode and decode again.
			buf, err := AppendMessage(nil, 1, msg)
			if err != nil {
				t.Fatalf("decoded %T but cannot re-encode: %v", msg, err)
			}
			_, again, err := AppendMessageDecode(buf)
			if err != nil {
				t.Fatalf("re-decode of %T failed: %v", msg, err)
			}
			if !reflect.DeepEqual(msg, again) {
				t.Fatalf("re-decode of %T changed value", msg)
			}
		}
	})
}

// AppendMessageDecode is a test helper: decode exactly one record.
func AppendMessageDecode(buf []byte) (protocol.NodeID, protocol.Message, error) {
	r := NewReader(buf)
	from, msg, err := DecodeMessage(r)
	if err != nil {
		return 0, nil, err
	}
	return from, msg, r.Done()
}

// FuzzReadEntry covers the WAL's per-record body decode.
func FuzzReadEntry(f *testing.F) {
	f.Add(AppendEntry(nil, &protocol.Entry{}))
	f.Add(AppendEntry(nil, &protocol.Entry{Index: 7, Term: 3, Bal: 3,
		Cmd: protocol.Command{ID: 9, Client: 1, Op: protocol.OpPut, Key: "a", Value: []byte("bb"), Size: 2}}))
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		e := ReadEntry(r)
		if err := r.Done(); err != nil {
			return
		}
		got := ReadEntry(NewReader(AppendEntry(nil, &e)))
		if !reflect.DeepEqual(e, got) {
			t.Fatalf("entry re-decode changed value")
		}
	})
}

// TestTruncationEveryPrefix decodes every strict prefix of every seed:
// all must fail cleanly (no panic, no silent success).
func TestTruncationEveryPrefix(t *testing.T) {
	for _, seed := range fuzzSeeds(t) {
		for n := 0; n < len(seed); n++ {
			r := NewReader(seed[:n])
			_, _, err := DecodeMessage(r)
			if err == nil {
				if derr := r.Done(); derr == nil {
					t.Fatalf("prefix %d/%d decoded cleanly", n, len(seed))
				}
			}
		}
	}
}

// TestCorruptionSingleByteFlips flips each byte of each seed and requires
// decode to either error or yield a message that still re-encodes — it
// must never panic or corrupt memory. (A flipped payload byte can decode
// to a different valid message; that is the CRC/compression layer's
// problem, not the codec's.)
func TestCorruptionSingleByteFlips(t *testing.T) {
	for _, seed := range fuzzSeeds(t) {
		for i := range seed {
			mut := append([]byte(nil), seed...)
			mut[i] ^= 0xFF
			r := NewReader(mut)
			_, msg, err := DecodeMessage(r)
			if err != nil {
				continue
			}
			if _, err := AppendMessage(nil, 1, msg); err != nil {
				t.Fatalf("byte %d flip decoded to unencodable %T", i, msg)
			}
		}
	}
}
