package rql_test

import (
	"testing"

	"raftpaxos/internal/protocol"
	"raftpaxos/internal/raftstar"
	"raftpaxos/internal/rql"
	"raftpaxos/internal/testcluster"
)

func newCluster(t *testing.T, n int, seed int64, mode rql.Mode) (*testcluster.Cluster, []*rql.Engine) {
	t.Helper()
	peers := make([]protocol.NodeID, n)
	for i := range peers {
		peers[i] = protocol.NodeID(i)
	}
	engines := make([]protocol.Engine, n)
	rqls := make([]*rql.Engine, n)
	for i := range peers {
		rqls[i] = rql.New(rql.Config{
			Raft: raftstar.Config{
				ID: peers[i], Peers: peers, ElectionTicks: 10, HeartbeatTicks: 2, Seed: seed,
			},
			Mode:       mode,
			LeaseTicks: 40,
			RenewTicks: 10,
		})
		engines[i] = rqls[i]
	}
	return testcluster.New(seed, engines...), rqls
}

func establish(t *testing.T, c *testcluster.Cluster) protocol.Engine {
	t.Helper()
	leader, err := c.ElectLeader(100)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(15) // lease grant/ack round trips
	return leader
}

func TestLocalReadAfterQuorumLease(t *testing.T) {
	c, rqls := newCluster(t, 3, 1, rql.QuorumLease)
	leader := establish(t, c)
	for _, e := range rqls {
		if !e.Leases().HasQuorumLease() {
			t.Fatalf("node %d: no quorum lease", e.ID())
		}
	}
	// A read at a follower must answer locally: no new messages needed.
	var follower protocol.NodeID = protocol.None
	for id := range c.Engines {
		if id != leader.ID() {
			follower = id
			break
		}
	}
	c.Replies = nil
	c.SubmitRead(follower, protocol.Command{ID: 77, Client: 900, Key: "unwritten"})
	found := false
	for _, r := range c.Replies {
		if r.CmdID == 77 && r.Kind == protocol.ReplyRead {
			found = true
		}
	}
	if !found {
		t.Fatal("lease read did not answer immediately")
	}
}

// TestReadWaitsForConflictingWrite: a local read of a key with an
// uncommitted write must wait for the commit (Figure 13's condition:
// indexes of entries modifying k ≤ commitIndex).
func TestReadWaitsForConflictingWrite(t *testing.T) {
	c, _ := newCluster(t, 3, 2, rql.QuorumLease)
	leader := establish(t, c)

	// Write "hot" but do not deliver the append acks yet.
	c.Submit(leader.ID(), protocol.Command{ID: 1, Client: 900, Op: protocol.OpPut, Key: "hot"})
	// The leader knows about the write (appended locally); a read at the
	// leader must NOT answer before commit.
	c.Replies = nil
	c.SubmitRead(leader.ID(), protocol.Command{ID: 2, Client: 900, Key: "hot"})
	for _, r := range c.Replies {
		if r.CmdID == 2 {
			t.Fatal("read answered before the conflicting write committed")
		}
	}
	// Deliver everything: the write commits, the read unblocks.
	c.Settle(5)
	found := false
	for _, r := range c.Replies {
		if r.CmdID == 2 && r.Kind == protocol.ReplyRead {
			found = true
		}
	}
	if !found {
		t.Fatal("read never answered after the write committed")
	}
}

// TestWriteWaitsForAllHolders: the ported LeaderLearn gates the commit on
// every lease holder's acknowledgement — with a holder cut off, writes
// must stall until its lease expires, then commit.
func TestWriteWaitsForAllHolders(t *testing.T) {
	c, _ := newCluster(t, 5, 3, rql.QuorumLease)
	leader := establish(t, c)

	// Cut one follower off entirely.
	var cut protocol.NodeID = protocol.None
	for id := range c.Engines {
		if id != leader.ID() {
			cut = id
			break
		}
	}
	c.Isolate(cut, true)

	// Submit a write; a quorum acks quickly but the cut holder cannot.
	c.Submit(leader.ID(), protocol.Command{ID: 10, Client: 900, Op: protocol.OpPut, Key: "k"})
	c.Tick()
	c.DeliverAll(100000)
	committed := func() bool {
		for _, ent := range c.Applied[leader.ID()] {
			if ent.Cmd.ID == 10 {
				return true
			}
		}
		return false
	}
	if committed() {
		t.Fatal("write committed while a lease holder had not acknowledged")
	}
	// After the cut node's lease expires at every grantor, the gate opens.
	c.Settle(60)
	if !committed() {
		t.Fatal("write never committed after the dead holder's lease expired")
	}
	if err := c.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaderLeaseModeForwardsFollowerReads(t *testing.T) {
	c, rqls := newCluster(t, 3, 4, rql.LeaderLease)
	leader := establish(t, c)
	// Settle past a full lease duration so any lease granted to a briefly
	// elected earlier leader expires naturally (leases cannot be revoked
	// early — that is their correctness condition).
	c.Settle(60)

	var leaderRQL *rql.Engine
	for _, e := range rqls {
		if e.ID() == leader.ID() {
			leaderRQL = e
		}
	}
	if !leaderRQL.Leases().HasQuorumLease() {
		t.Fatal("LL leader holds no lease")
	}
	for _, e := range rqls {
		if e.ID() != leader.ID() && e.Leases().HasQuorumLease() {
			t.Fatalf("LL follower %d holds a quorum lease", e.ID())
		}
	}
	// Follower read resolves via the leader.
	var follower protocol.NodeID = protocol.None
	for id := range c.Engines {
		if id != leader.ID() {
			follower = id
			break
		}
	}
	c.Replies = nil
	c.SubmitRead(follower, protocol.Command{ID: 42, Client: 900, Key: "x"})
	c.Settle(3)
	found := false
	for _, r := range c.Replies {
		if r.CmdID == 42 && r.Kind == protocol.ReplyRead {
			found = true
		}
	}
	if !found {
		t.Fatal("forwarded LL read never answered")
	}
}

func TestAgreementUnderChaos(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		c, _ := newCluster(t, 3, 500+seed, rql.QuorumLease)
		leader, err := c.ElectLeader(100)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 15; i++ {
			c.Submit(leader.ID(), protocol.Command{ID: uint64(i + 1), Client: 900, Op: protocol.OpPut, Key: "k"})
			c.DeliverChaos(2000)
		}
		for r := 0; r < 30; r++ {
			c.Tick()
			c.DeliverChaos(100000)
		}
		if err := c.CheckAgreement(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
