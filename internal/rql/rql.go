// Package rql implements Raft*-PQL — Paxos Quorum Lease ported onto Raft*
// by the paper's method (Appendix A.2, Figure 13) — and the Leader Lease
// (LL) baseline used in the Figure 9 evaluation.
//
// The port is non-mutating at the engine level too: the wrapper only reads
// Raft* state (commit index, match indexes) through the Hooks extension
// points and maintains its own lease and per-key conflict state. Two
// details come straight from the paper's derivation:
//
//   - LeaderLearn must union the holders reported in the f appendOK
//     messages with the holders granted by the leader itself, because
//     Paxos's f+1 acceptOKs map to f appendOKs plus the leader's implicit
//     self-acknowledgement (the bug the handworked port had).
//   - A local read requires both a quorum lease and that every entry
//     modifying the key is committed (indexes ≤ commitIndex), transformed
//     from PQL's "all instances modifying k are in chosenSet".
package rql

import (
	"raftpaxos/internal/lease"
	"raftpaxos/internal/protocol"
	"raftpaxos/internal/raftstar"
)

// Mode selects the lease discipline.
type Mode uint8

// Modes.
const (
	// QuorumLease is Raft*-PQL: every replica may hold leases and serve
	// local reads.
	QuorumLease Mode = iota + 1
	// LeaderLease is the LL baseline: only the leader holds a lease and
	// serves local reads; followers forward reads to it.
	LeaderLease
)

// Wire stability: read requests travel the live wire through internal/wire;
// exported field ORDER is the encoded layout and is frozen. Append new
// fields at the end and bump the transport's wireVersion.
//
// MsgReadReq forwards a read to the leader (LL mode, or a PQL replica
// without an active quorum lease).
type MsgReadReq struct {
	Cmd protocol.Command
}

// WireSize implements protocol.Message.
func (m *MsgReadReq) WireSize() int { return 8 + m.Cmd.WireSize() }

// Config configures a Raft*-PQL / Raft*-LL replica.
type Config struct {
	Raft raftstar.Config
	Mode Mode
	// LeaseTicks is the lease duration (paper: 2 s).
	LeaseTicks int
	// RenewTicks is the grant renewal period (paper: 0.5 s).
	RenewTicks int
	// SkewMarginTicks is the holder-side guard band against clock skew
	// (0 = lease package default, LeaseTicks/8). See internal/lease.
	SkewMarginTicks int
	// UnsafeNoLeaseGuard disables the guard band — sabotage tests only.
	UnsafeNoLeaseGuard bool
}

type pendingRead struct {
	cmd     protocol.Command
	waitIdx int64
}

// Engine wraps a Raft* replica with quorum-lease reads.
type Engine struct {
	inner  *raftstar.Engine
	mode   Mode
	leases *lease.Table
	peers  []protocol.NodeID

	// lastWrite[k] is the highest log index of a write to k seen locally
	// (accepted appends on followers, local appends on the leader).
	lastWrite map[string]int64
	// reported[p] is the holder set peer p attached to its last appendOK,
	// with the tick it arrived. A grantor's requirement dies with its
	// grants: reports older than the lease duration are ignored, so a
	// crashed replica's stale self-report cannot block commits forever.
	reported   map[protocol.NodeID][]protocol.NodeID
	reportedAt map[protocol.NodeID]int
	leaseTicks int
	pending    []pendingRead
}

var _ protocol.Engine = (*Engine)(nil)

// New builds the engine. It installs hooks into the inner Raft* replica;
// the caller must not install its own.
func New(cfg Config) *Engine {
	e := &Engine{
		mode:       cfg.Mode,
		peers:      append([]protocol.NodeID(nil), cfg.Raft.Peers...),
		lastWrite:  make(map[string]int64),
		reported:   make(map[protocol.NodeID][]protocol.NodeID),
		reportedAt: make(map[protocol.NodeID]int),
		leaseTicks: cfg.LeaseTicks,
	}
	if e.leaseTicks <= 0 {
		e.leaseTicks = 200
	}
	if e.mode == 0 {
		e.mode = QuorumLease
	}
	lcfg := lease.Config{
		Self:            cfg.Raft.ID,
		Peers:           cfg.Raft.Peers,
		DurationTicks:   cfg.LeaseTicks,
		RenewTicks:      cfg.RenewTicks,
		SkewMarginTicks: cfg.SkewMarginTicks,
		UnsafeNoGuard:   cfg.UnsafeNoLeaseGuard,
	}
	if e.mode == LeaderLease {
		// Grants are re-targeted at the current leader on every tick.
		lcfg.Grantees = []protocol.NodeID{}
	}
	e.leases = lease.NewTable(lcfg)

	rcfg := cfg.Raft
	rcfg.Hooks = raftstar.Hooks{
		LocalHolders: e.localHolders,
		OnAppendResp: e.onAppendResp,
		GateCommit:   e.gateCommit,
		OnAccept:     e.onAccept,
	}
	e.inner = raftstar.New(rcfg)
	return e
}

// Inner exposes the wrapped Raft* replica (tests and drivers inspect it).
func (e *Engine) Inner() *raftstar.Engine { return e.inner }

// Leases exposes the lease table for inspection.
func (e *Engine) Leases() *lease.Table { return e.leases }

// ID implements protocol.Engine.
func (e *Engine) ID() protocol.NodeID { return e.inner.ID() }

// Leader implements protocol.Engine.
func (e *Engine) Leader() protocol.NodeID { return e.inner.Leader() }

// IsLeader implements protocol.Engine.
func (e *Engine) IsLeader() bool { return e.inner.IsLeader() }

// --- hooks into Raft* ---

func (e *Engine) localHolders() []protocol.NodeID {
	if e.mode != QuorumLease {
		return nil
	}
	return e.leases.Holders()
}

func (e *Engine) onAppendResp(from protocol.NodeID, _ int64, holders []protocol.NodeID) {
	if e.mode != QuorumLease {
		return
	}
	e.reported[from] = holders
	e.reportedAt[from] = e.leases.Now()
}

// gateCommit implements the ported LeaderLearn (Figure 13): the commit
// index may only advance to C if every lease holder — the union of holders
// reported by followers and those granted by the leader itself — has
// acknowledged the log up to C.
func (e *Engine) gateCommit(proposed int64) int64 {
	if e.mode != QuorumLease {
		return proposed
	}
	now := e.leases.Now()
	holderSet := make(map[protocol.NodeID]bool)
	for q, hs := range e.reported {
		if e.reportedAt[q]+e.leaseTicks <= now {
			continue // grantor silent past a full lease: its grants expired
		}
		for _, h := range hs {
			holderSet[h] = true
		}
	}
	for _, h := range e.leases.Holders() {
		holderSet[h] = true
	}
	allowed := proposed
	self := e.inner.ID()
	for h := range holderSet {
		if h == self {
			continue // the leader has trivially acknowledged its own log
		}
		if m := e.inner.MatchIndex(h); m < allowed {
			allowed = m
		}
	}
	if allowed < e.inner.CommitIndex() {
		allowed = e.inner.CommitIndex()
	}
	return allowed
}

func (e *Engine) onAccept(ents []protocol.Entry) {
	for _, ent := range ents {
		if ent.Cmd.Op == protocol.OpPut && ent.Index > e.lastWrite[ent.Cmd.Key] {
			e.lastWrite[ent.Cmd.Key] = ent.Index
		}
	}
}

// --- protocol.Engine ---

// Tick implements protocol.Engine: lease renewal rides on the Raft* tick.
func (e *Engine) Tick() protocol.Output {
	var out protocol.Output
	if e.mode == LeaderLease {
		// Followers grant only to whoever they currently believe leads.
		if l := e.inner.Leader(); l != protocol.None && l != e.inner.ID() {
			e.leases.SetGrantees([]protocol.NodeID{l})
		} else {
			e.leases.SetGrantees([]protocol.NodeID{})
		}
	}
	out.Msgs = append(out.Msgs, e.leases.Tick()...)
	out.Merge(e.inner.Tick())
	// Lease expiry may unblock gated commits and queued reads.
	out.Merge(e.inner.RecheckCommit())
	e.flushReads(&out)
	return out
}

// Step implements protocol.Engine.
func (e *Engine) Step(from protocol.NodeID, msg protocol.Message) protocol.Output {
	var out protocol.Output
	if msgs, handled := e.leases.Step(from, msg); handled {
		out.Msgs = append(out.Msgs, msgs...)
		return out
	}
	if m, ok := msg.(*MsgReadReq); ok {
		out.Merge(e.SubmitRead(m.Cmd))
		return out
	}
	out.Merge(e.inner.Step(from, msg))
	e.flushReads(&out)
	return out
}

// Submit implements protocol.Engine (writes are plain Raft*; onAccept
// tracks the per-key write index when the entry is appended).
func (e *Engine) Submit(cmd protocol.Command) protocol.Output {
	out := e.inner.Submit(cmd)
	e.flushReads(&out)
	return out
}

// SubmitBatch implements protocol.BatchSubmitter (writes are plain Raft*).
func (e *Engine) SubmitBatch(cmds []protocol.Command) protocol.Output {
	out := e.inner.SubmitBatch(cmds)
	e.flushReads(&out)
	return out
}

// Term exposes Raft*'s term for the live driver's hard-state snapshot.
func (e *Engine) Term() uint64 { return e.inner.Term() }

// VotedFor exposes Raft*'s vote for the live driver's hard-state snapshot.
func (e *Engine) VotedFor() protocol.NodeID { return e.inner.VotedFor() }

// CommitIndex exposes Raft*'s commit index for the live driver's
// hard-state snapshot.
func (e *Engine) CommitIndex() int64 { return e.inner.CommitIndex() }

// RestoreHardState forwards the live driver's restart restore to Raft*.
func (e *Engine) RestoreHardState(term uint64, votedFor protocol.NodeID) {
	e.inner.RestoreHardState(term, votedFor)
}

// RestoreLog forwards the live driver's restart restore to Raft*.
func (e *Engine) RestoreLog(ents []protocol.Entry, commit int64) {
	e.inner.RestoreLog(ents, commit)
}

// RestoreSnapshot forwards the snapshot boundary to Raft*.
func (e *Engine) RestoreSnapshot(index int64, term uint64) {
	e.inner.RestoreSnapshot(index, term)
}

// SetSnapshotProvider implements protocol.SnapshotSender via Raft*, so a
// live driver's snapshot store reaches the inner engine and a leader can
// ship images to compaction-stranded peers.
func (e *Engine) SetSnapshotProvider(p protocol.SnapshotProvider) {
	e.inner.SetSnapshotProvider(p)
}

// TruncatePrefix implements protocol.PrefixTruncator via Raft*.
func (e *Engine) TruncatePrefix(through int64) { e.inner.TruncatePrefix(through) }

// LogLen reports Raft*'s in-memory tail length.
func (e *Engine) LogLen() int { return e.inner.LogLen() }

// SubmitRead implements protocol.Engine: the ported LocalRead (Figure 13).
func (e *Engine) SubmitRead(cmd protocol.Command) protocol.Output {
	cmd.Op = protocol.OpGet
	var out protocol.Output
	switch e.mode {
	case QuorumLease:
		if e.leases.HasQuorumLease() {
			e.queueOrServe(cmd, &out)
			return out
		}
		// No quorum lease: fall back to replicating the read.
		return e.inner.SubmitRead(cmd)
	case LeaderLease:
		if e.inner.IsLeader() {
			if e.leases.HasQuorumLease() {
				e.queueOrServe(cmd, &out)
				return out
			}
			return e.inner.SubmitRead(cmd)
		}
		if l := e.inner.Leader(); l != protocol.None {
			out.Msgs = append(out.Msgs, protocol.Envelope{
				From: e.inner.ID(), To: l, Msg: &MsgReadReq{Cmd: cmd},
			})
			return out
		}
		return e.inner.SubmitRead(cmd)
	}
	return e.inner.SubmitRead(cmd)
}

// queueOrServe serves the read immediately if every write to the key is
// committed, else parks it until the commit index catches up.
func (e *Engine) queueOrServe(cmd protocol.Command, out *protocol.Output) {
	waitIdx := e.lastWrite[cmd.Key]
	if waitIdx <= e.inner.CommitIndex() {
		out.Replies = append(out.Replies, protocol.ClientReply{
			Kind: protocol.ReplyRead, CmdID: cmd.ID, Client: cmd.Client, Key: cmd.Key,
		})
		return
	}
	e.pending = append(e.pending, pendingRead{cmd: cmd, waitIdx: waitIdx})
}

// flushReads releases parked reads whose conflicting writes have
// committed, and re-routes parked reads if the lease was lost.
func (e *Engine) flushReads(out *protocol.Output) {
	if len(e.pending) == 0 {
		return
	}
	commit := e.inner.CommitIndex()
	hasLease := e.leases.HasQuorumLease() || (e.mode == LeaderLease && e.inner.IsLeader())
	keep := e.pending[:0]
	for _, pr := range e.pending {
		switch {
		case !hasLease:
			// Lost the lease while parked: replicate the read instead.
			out.Merge(e.inner.SubmitRead(pr.cmd))
		case pr.waitIdx <= commit:
			out.Replies = append(out.Replies, protocol.ClientReply{
				Kind: protocol.ReplyRead, CmdID: pr.cmd.ID, Client: pr.cmd.Client, Key: pr.cmd.Key,
			})
		default:
			keep = append(keep, pr)
		}
	}
	e.pending = keep
}
