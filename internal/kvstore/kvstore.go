// Package kvstore is the replicated state machine used by the examples
// and the evaluation: a versioned key-value store applying committed
// commands in log order.
package kvstore

import (
	"sync"

	"raftpaxos/internal/protocol"
)

// Versioned is a value with the log index that wrote it.
type Versioned struct {
	Value []byte
	Index int64
}

// Store is a key-value state machine. It is safe for concurrent use (live
// drivers apply from one goroutine and serve reads from others; the
// simulator is single-threaded and pays no contention).
type Store struct {
	mu      sync.RWMutex
	data    map[string]Versioned
	applied int64
	applies uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string]Versioned)}
}

// Apply executes one committed entry. Entries must be applied in index
// order; no-ops advance the applied index only.
func (s *Store) Apply(e protocol.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Index > 0 {
		s.applied = e.Index
	}
	s.applies++
	if e.Cmd.Op == protocol.OpPut {
		s.data[e.Cmd.Key] = Versioned{Value: e.Cmd.Value, Index: e.Index}
	}
}

// Get returns the current value of key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v.Value, ok
}

// GetVersioned returns the value with its writing index.
func (s *Store) GetVersioned(key string) (Versioned, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// AppliedIndex returns the highest applied log index.
func (s *Store) AppliedIndex() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}
