// Package kvstore is the replicated state machine used by the examples
// and the evaluation: a versioned key-value store applying committed
// commands in log order.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"raftpaxos/internal/protocol"
)

// Versioned is a value with the log index that wrote it.
type Versioned struct {
	Value []byte
	Index int64
}

// Store is a key-value state machine. It is safe for concurrent use (live
// drivers apply from one goroutine and serve reads from others; the
// simulator is single-threaded and pays no contention).
type Store struct {
	mu      sync.RWMutex
	data    map[string]Versioned
	applied int64
	applies uint64
}

var _ protocol.StateMachine = (*Store)(nil)

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string]Versioned)}
}

// Apply executes one committed entry. Entries must be applied in index
// order; no-ops advance the applied index only.
func (s *Store) Apply(e protocol.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Index > 0 {
		s.applied = e.Index
	}
	s.applies++
	if e.Cmd.Op == protocol.OpPut {
		s.data[e.Cmd.Key] = Versioned{Value: e.Cmd.Value, Index: e.Index}
	}
}

// Get returns the current value of key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v.Value, ok
}

// GetVersioned returns the value with its writing index.
func (s *Store) GetVersioned(key string) (Versioned, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// AppliedIndex returns the highest applied log index.
func (s *Store) AppliedIndex() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// snapshotVersion tags the serialized format so it can evolve.
const snapshotVersion = 1

// Snapshot implements protocol.StateMachine: a deterministic binary image
// of the applied state (keys serialized in sorted order) plus the applied
// index, suitable for log compaction. The caller is responsible for
// framing/checksumming the image (the storage layer CRC-frames snapshot
// files).
func (s *Store) Snapshot() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var buf []byte
	var tmp [8]byte
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	buf = append(buf, snapshotVersion)
	put64(uint64(s.applied))
	put32(uint32(len(keys)))
	for _, k := range keys {
		v := s.data[k]
		put32(uint32(len(k)))
		buf = append(buf, k...)
		put64(uint64(v.Index))
		put32(uint32(len(v.Value)))
		buf = append(buf, v.Value...)
	}
	return buf, nil
}

// Restore implements protocol.StateMachine: replace the applied state with
// a Snapshot image.
func (s *Store) Restore(data []byte) error {
	if len(data) < 1+8+4 {
		return errors.New("kvstore: short snapshot")
	}
	if data[0] != snapshotVersion {
		return fmt.Errorf("kvstore: snapshot version %d, want %d", data[0], snapshotVersion)
	}
	off := 1
	get64 := func() (uint64, bool) {
		if off+8 > len(data) {
			return 0, false
		}
		v := binary.BigEndian.Uint64(data[off : off+8])
		off += 8
		return v, true
	}
	get32 := func() (uint32, bool) {
		if off+4 > len(data) {
			return 0, false
		}
		v := binary.BigEndian.Uint32(data[off : off+4])
		off += 4
		return v, true
	}
	applied, _ := get64()
	n, _ := get32()
	m := make(map[string]Versioned, n)
	for i := uint32(0); i < n; i++ {
		klen, ok := get32()
		if !ok || off+int(klen) > len(data) {
			return errors.New("kvstore: truncated snapshot key")
		}
		k := string(data[off : off+int(klen)])
		off += int(klen)
		idx, ok := get64()
		if !ok {
			return errors.New("kvstore: truncated snapshot index")
		}
		vlen, ok := get32()
		if !ok || off+int(vlen) > len(data) {
			return errors.New("kvstore: truncated snapshot value")
		}
		var val []byte
		if vlen > 0 {
			val = append([]byte(nil), data[off:off+int(vlen)]...)
		}
		off += int(vlen)
		m[k] = Versioned{Value: val, Index: int64(idx)}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = m
	s.applied = int64(applied)
	return nil
}
