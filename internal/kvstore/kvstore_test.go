package kvstore_test

import (
	"sync"
	"testing"

	"raftpaxos/internal/kvstore"
	"raftpaxos/internal/protocol"
)

func TestApplyAndGet(t *testing.T) {
	s := kvstore.New()
	s.Apply(protocol.Entry{Index: 1, Cmd: protocol.Command{Op: protocol.OpPut, Key: "a", Value: []byte("1")}})
	s.Apply(protocol.Entry{Index: 2, Cmd: protocol.Command{Op: protocol.OpPut, Key: "b", Value: []byte("2")}})
	s.Apply(protocol.Entry{Index: 3, Cmd: protocol.Command{Op: protocol.OpPut, Key: "a", Value: []byte("3")}})

	v, ok := s.Get("a")
	if !ok || string(v) != "3" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	vv, ok := s.GetVersioned("a")
	if !ok || vv.Index != 3 {
		t.Fatalf("versioned a = %+v", vv)
	}
	if s.AppliedIndex() != 3 {
		t.Fatalf("applied = %d", s.AppliedIndex())
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestNopsAdvanceAppliedOnly(t *testing.T) {
	s := kvstore.New()
	s.Apply(protocol.Entry{Index: 1, Cmd: protocol.Command{Op: protocol.OpNop}})
	s.Apply(protocol.Entry{Index: 2, Cmd: protocol.Command{Op: protocol.OpGet, Key: "x"}})
	if s.AppliedIndex() != 2 || s.Len() != 0 {
		t.Fatalf("applied=%d len=%d", s.AppliedIndex(), s.Len())
	}
}

func TestConcurrentReaders(t *testing.T) {
	s := kvstore.New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Get("k")
				s.AppliedIndex()
			}
		}()
	}
	for i := int64(1); i <= 1000; i++ {
		s.Apply(protocol.Entry{Index: i, Cmd: protocol.Command{Op: protocol.OpPut, Key: "k", Value: []byte("v")}})
	}
	wg.Wait()
	if s.AppliedIndex() != 1000 {
		t.Fatalf("applied = %d", s.AppliedIndex())
	}
}
