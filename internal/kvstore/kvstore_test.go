package kvstore_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"raftpaxos/internal/kvstore"
	"raftpaxos/internal/protocol"
)

func TestApplyAndGet(t *testing.T) {
	s := kvstore.New()
	s.Apply(protocol.Entry{Index: 1, Cmd: protocol.Command{Op: protocol.OpPut, Key: "a", Value: []byte("1")}})
	s.Apply(protocol.Entry{Index: 2, Cmd: protocol.Command{Op: protocol.OpPut, Key: "b", Value: []byte("2")}})
	s.Apply(protocol.Entry{Index: 3, Cmd: protocol.Command{Op: protocol.OpPut, Key: "a", Value: []byte("3")}})

	v, ok := s.Get("a")
	if !ok || string(v) != "3" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	vv, ok := s.GetVersioned("a")
	if !ok || vv.Index != 3 {
		t.Fatalf("versioned a = %+v", vv)
	}
	if s.AppliedIndex() != 3 {
		t.Fatalf("applied = %d", s.AppliedIndex())
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestNopsAdvanceAppliedOnly(t *testing.T) {
	s := kvstore.New()
	s.Apply(protocol.Entry{Index: 1, Cmd: protocol.Command{Op: protocol.OpNop}})
	s.Apply(protocol.Entry{Index: 2, Cmd: protocol.Command{Op: protocol.OpGet, Key: "x"}})
	if s.AppliedIndex() != 2 || s.Len() != 0 {
		t.Fatalf("applied=%d len=%d", s.AppliedIndex(), s.Len())
	}
}

// TestSnapshotRestoreRoundTrip serializes an applied state and rebuilds an
// identical store from it — the state-machine half of log compaction.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := kvstore.New()
	for i := int64(1); i <= 50; i++ {
		s.Apply(protocol.Entry{Index: i, Cmd: protocol.Command{
			Op: protocol.OpPut, Key: fmt.Sprintf("k%d", i%7), Value: []byte(fmt.Sprintf("v%d", i)),
		}})
	}
	s.Apply(protocol.Entry{Index: 51, Cmd: protocol.Command{Op: protocol.OpNop}})
	img, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	re := kvstore.New()
	if err := re.Restore(img); err != nil {
		t.Fatal(err)
	}
	if re.AppliedIndex() != 51 {
		t.Fatalf("restored applied = %d, want 51", re.AppliedIndex())
	}
	if re.Len() != s.Len() {
		t.Fatalf("restored len = %d, want %d", re.Len(), s.Len())
	}
	for i := 0; i < 7; i++ {
		k := fmt.Sprintf("k%d", i)
		want, wok := s.GetVersioned(k)
		got, gok := re.GetVersioned(k)
		if wok != gok || got.Index != want.Index || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("key %s: restored %+v, want %+v", k, got, want)
		}
	}
	// Restore replaces, not merges: pre-existing junk must vanish.
	dirty := kvstore.New()
	dirty.Apply(protocol.Entry{Index: 1, Cmd: protocol.Command{Op: protocol.OpPut, Key: "junk", Value: []byte("x")}})
	if err := dirty.Restore(img); err != nil {
		t.Fatal(err)
	}
	if _, ok := dirty.Get("junk"); ok {
		t.Fatal("Restore merged instead of replacing")
	}
}

// TestSnapshotDeterministic asserts two snapshots of identical state are
// byte-identical (map iteration order must not leak into the image).
func TestSnapshotDeterministic(t *testing.T) {
	build := func() *kvstore.Store {
		s := kvstore.New()
		for i := int64(1); i <= 100; i++ {
			s.Apply(protocol.Entry{Index: i, Cmd: protocol.Command{
				Op: protocol.OpPut, Key: fmt.Sprintf("key-%d", i), Value: []byte("v"),
			}})
		}
		return s
	}
	a, err := build().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("snapshots of identical state differ")
	}
}

// TestRestoreRejectsGarbage must fail cleanly, never panic or half-apply.
func TestRestoreRejectsGarbage(t *testing.T) {
	s := kvstore.New()
	s.Apply(protocol.Entry{Index: 1, Cmd: protocol.Command{Op: protocol.OpPut, Key: "keep", Value: []byte("v")}})
	for _, bad := range [][]byte{nil, {0}, {99, 0, 0, 0, 0, 0, 0, 0, 0}, []byte("garbage-garbage")} {
		if err := s.Restore(bad); err == nil {
			t.Fatalf("garbage %v accepted", bad)
		}
	}
	if _, ok := s.Get("keep"); !ok {
		t.Fatal("failed restore clobbered state")
	}
}

func TestConcurrentReaders(t *testing.T) {
	s := kvstore.New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Get("k")
				s.AppliedIndex()
			}
		}()
	}
	for i := int64(1); i <= 1000; i++ {
		s.Apply(protocol.Entry{Index: i, Cmd: protocol.Command{Op: protocol.OpPut, Key: "k", Value: []byte("v")}})
	}
	wg.Wait()
	if s.AppliedIndex() != 1000 {
		t.Fatalf("applied = %d", s.AppliedIndex())
	}
}
