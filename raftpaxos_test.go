package raftpaxos_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"raftpaxos"
)

func testClusterPutGet(t *testing.T, proto raftpaxos.Proto) {
	t.Helper()
	cl, err := raftpaxos.NewCluster(raftpaxos.ClusterConfig{
		Protocol:          proto,
		Nodes:             3,
		TickInterval:      2 * time.Millisecond,
		ElectionTimeout:   60 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		LeaseDuration:     200 * time.Millisecond,
		LeaseRenew:        50 * time.Millisecond,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	if proto != raftpaxos.ProtoRaftStarMencius {
		if l := cl.WaitLeader(5 * time.Second); l < 0 {
			t.Fatal("no leader elected")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := cl.Node(i%cl.Len()).Put(ctx, key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		got, err := cl.Node((i+1)%cl.Len()).Get(ctx, key)
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		if want := fmt.Sprintf("v%d", i); string(got) != want {
			t.Fatalf("get %s = %q, want %q", key, got, want)
		}
	}
}

func TestClusterRaftStar(t *testing.T)   { testClusterPutGet(t, raftpaxos.ProtoRaftStar) }
func TestClusterRaft(t *testing.T)       { testClusterPutGet(t, raftpaxos.ProtoRaft) }
func TestClusterMultiPaxos(t *testing.T) { testClusterPutGet(t, raftpaxos.ProtoMultiPaxos) }
func TestClusterPQL(t *testing.T)        { testClusterPutGet(t, raftpaxos.ProtoRaftStarPQL) }
func TestClusterLL(t *testing.T)         { testClusterPutGet(t, raftpaxos.ProtoRaftStarLL) }
func TestClusterMencius(t *testing.T)    { testClusterPutGet(t, raftpaxos.ProtoRaftStarMencius) }
func TestClusterPaxosPQL(t *testing.T)   { testClusterPutGet(t, raftpaxos.ProtoPaxosPQL) }

func TestParseProto(t *testing.T) {
	for _, p := range []raftpaxos.Proto{
		raftpaxos.ProtoMultiPaxos, raftpaxos.ProtoRaft, raftpaxos.ProtoRaftStar,
		raftpaxos.ProtoRaftStarPQL, raftpaxos.ProtoRaftStarLL,
		raftpaxos.ProtoRaftStarMencius, raftpaxos.ProtoPaxosPQL,
	} {
		got, err := raftpaxos.ParseProto(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseProto(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := raftpaxos.ParseProto("nope"); err == nil {
		t.Fatal("expected error for unknown protocol")
	}
}

// TestFormalFacade exercises the re-exported formal layer end to end on
// the cheapest artifacts.
func TestFormalFacade(t *testing.T) {
	ported, err := raftpaxos.NewPortedMencius()
	if err != nil {
		t.Fatal(err)
	}
	res := raftpaxos.CheckRefinement(ported.ToBase, raftpaxos.CheckOptions{MaxStates: 3000})
	if res.Violation != nil {
		t.Fatalf("generated CoorRaft must refine Raft*: %v", res.Violation)
	}
	neg := raftpaxos.RaftRefinementAttempt(raftpaxos.DefaultBounds())
	res = raftpaxos.CheckRefinement(neg, raftpaxos.CheckOptions{MaxStates: 20000, MaxHops: 4})
	if res.Violation == nil {
		t.Fatal("Raft must not refine MultiPaxos")
	}
}
